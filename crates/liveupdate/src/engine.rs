//! The per-node serving engine: inference path + online update path (paper Fig. 7).
//!
//! [`ServingNode`] owns everything a LiveUpdate inference node needs:
//!
//! * the **base model** — the frozen DLRM last received from the training cluster,
//! * the **serving model** — the base embeddings with the accumulated LoRA corrections
//!   materialised for hot rows (the "LoRA cache" of the paper), used by every prediction,
//! * the **LoRA tables**, one per embedding table,
//! * the **rank adapters** and **usage pruners** implementing Algorithm 1,
//! * the **hot-index filter** deciding which lookups need the corrected path,
//! * the **retention buffer** of recent requests that feeds the online trainer, and
//! * per-table **access histograms** used to retune the pruning threshold.
//!
//! The inference path (`serve_batch`) serves requests and caches them for training; the
//! online update path (`online_update_round`) trains the LoRA factors from the buffer,
//! refreshes the serving rows, and periodically adapts the rank and prunes the tables.

use crate::config::LiveUpdateConfig;
use crate::hot_index::HotIndexFilter;
use crate::lora::LoraTable;
use crate::pruning::UsagePruner;
use crate::rank_adapt::RankAdapter;
use crate::trainer::LoraTrainer;
use liveupdate_dlrm::metrics::{Auc, LogLoss};
use liveupdate_dlrm::model::DlrmModel;
use liveupdate_dlrm::sample::{MiniBatch, Sample};
use liveupdate_workload::access::AccessHistogram;
use liveupdate_workload::trace::RetentionBuffer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Summary of one inference window served by the node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Number of requests served.
    pub requests: usize,
    /// How many individual lookups took the LoRA-corrected path.
    pub lora_corrected_lookups: usize,
    /// Mean predicted click probability over the window.
    pub mean_prediction: f64,
}

/// Summary of one online update round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRoundReport {
    /// Mean training loss of the round's mini-batch.
    pub loss: f64,
    /// Number of `(table, row)` LoRA updates applied.
    pub rows_updated: usize,
    /// The distinct `(table, row)` indices touched this round — the support a cluster
    /// records into [`crate::sync::SparseLoraSync`] for the next sparse synchronisation.
    pub touched_rows: Vec<(usize, usize)>,
    /// Whether a rank/pruning adaptation was triggered this round.
    pub adapted: bool,
    /// Current LoRA rank per table.
    pub ranks: Vec<usize>,
    /// Rows pruned across all tables (zero when no adaptation ran).
    pub pruned_rows: usize,
    /// Total LoRA memory after the round, in bytes.
    pub lora_memory_bytes: usize,
}

/// A LiveUpdate inference node.
#[derive(Debug, Clone)]
pub struct ServingNode {
    config: LiveUpdateConfig,
    base_model: DlrmModel,
    serving_model: DlrmModel,
    loras: Vec<LoraTable>,
    rank_adapters: Vec<RankAdapter>,
    pruners: Vec<UsagePruner>,
    hot_filter: HotIndexFilter,
    buffer: RetentionBuffer,
    access: Vec<AccessHistogram>,
    trainer: LoraTrainer,
    steps: u64,
    rng: StdRng,
}

impl ServingNode {
    /// Create a node serving `model` with LiveUpdate enabled.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(model: DlrmModel, config: LiveUpdateConfig) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid LiveUpdate configuration: {reason}");
        }
        let loras: Vec<LoraTable> = model
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                LoraTable::new(t.num_rows(), t.dim(), config.initial_rank, 1000 + i as u64)
            })
            .collect();
        let rank_adapters = model
            .tables()
            .iter()
            .map(|_| {
                RankAdapter::new(
                    config.variance_threshold,
                    config.initial_rank,
                    config.min_rank,
                    config.max_rank,
                )
            })
            .collect();
        let pruners = model
            .tables()
            .iter()
            .map(|t| {
                UsagePruner::from_table(
                    t.num_rows(),
                    config.pruning_window_steps,
                    config.min_table_fraction,
                    config.max_table_fraction,
                    1,
                )
            })
            .collect();
        let access = model
            .tables()
            .iter()
            .map(|t| AccessHistogram::new(t.num_rows()))
            .collect();
        let hot_filter = HotIndexFilter::new(model.tables().len());
        let buffer = RetentionBuffer::new(config.retention_minutes, config.retention_max_records);
        // The serving model alone takes the configured (possibly quantized) row storage;
        // the frozen base model stays f64 so refresh/merge paths read exact values.
        let mut serving_model = model.clone();
        serving_model.convert_embedding_storage(config.serving_storage);
        Self {
            trainer: LoraTrainer::new(config.lora_learning_rate),
            serving_model,
            base_model: model,
            loras,
            rank_adapters,
            pruners,
            hot_filter,
            buffer,
            access,
            config,
            steps: 0,
            rng: StdRng::seed_from_u64(0xC0FFEE),
        }
    }

    /// The node configuration.
    #[must_use]
    pub fn config(&self) -> &LiveUpdateConfig {
        &self.config
    }

    /// The serving model (base + materialised LoRA corrections).
    #[must_use]
    pub fn serving_model(&self) -> &DlrmModel {
        &self.serving_model
    }

    /// The LoRA adapters, one per embedding table.
    #[must_use]
    pub fn loras(&self) -> &[LoraTable] {
        &self.loras
    }

    /// Current LoRA rank per table.
    #[must_use]
    pub fn current_ranks(&self) -> Vec<usize> {
        self.loras.iter().map(LoraTable::rank).collect()
    }

    /// Number of records currently retained in the inference-log buffer.
    #[must_use]
    pub fn buffered_records(&self) -> usize {
        self.buffer.len()
    }

    /// Total online update steps performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total LoRA memory across tables in bytes.
    #[must_use]
    pub fn lora_memory_bytes(&self) -> usize {
        self.loras.iter().map(LoraTable::memory_bytes).sum()
    }

    /// LoRA memory as a fraction of the base embedding-table memory.
    #[must_use]
    pub fn lora_memory_fraction(&self) -> f64 {
        let base: usize = self
            .base_model
            .tables()
            .iter()
            .map(liveupdate_dlrm::EmbeddingTable::memory_bytes)
            .sum();
        if base == 0 {
            return 0.0;
        }
        self.lora_memory_bytes() as f64 / base as f64
    }

    /// Predict the click probability of one request through the serving model.
    #[must_use]
    pub fn predict(&self, sample: &Sample) -> f64 {
        self.serving_model.predict(sample)
    }

    /// Serve a window of requests at `time_minutes`: predict, count the LoRA-corrected
    /// lookups, record accesses, and cache the labelled samples in the retention buffer for
    /// the online update path.
    ///
    /// This is the monolithic single-threaded path: a read-only serve pass (shared with
    /// [`ServingSnapshot::serve_batch`](crate::snapshot::ServingSnapshot::serve_batch))
    /// followed by [`Self::ingest_batch`]. The multithreaded runtime performs the two
    /// halves on different threads — workers serve from a published snapshot, the updater
    /// ingests — and the determinism-parity test pins that the split reproduces this
    /// path's state bit-for-bit.
    pub fn serve_batch(&mut self, time_minutes: f64, batch: &MiniBatch) -> ServeReport {
        let report = crate::snapshot::readonly_serve(&self.serving_model, &self.hot_filter, batch);
        self.ingest_batch(time_minutes, batch);
        report
    }

    /// The mutating half of the serve path: record every sparse access into the per-table
    /// histograms and push the labelled samples into the retention buffer that feeds the
    /// online trainer. No predictions are made.
    pub fn ingest_batch(&mut self, time_minutes: f64, batch: &MiniBatch) {
        for sample in batch.iter() {
            for (table_idx, ids) in sample.sparse.iter().enumerate() {
                for &id in ids {
                    self.access[table_idx].record(id);
                }
            }
        }
        self.buffer.push_batch(time_minutes, batch);
    }

    /// Capture an immutable [`ServingSnapshot`](crate::snapshot::ServingSnapshot) of the
    /// current serving state (model + hot filter), checksummed at capture time. This is
    /// what the runtime's updater publishes after each round via the atomic epoch swap.
    #[must_use]
    pub fn snapshot(&self) -> crate::snapshot::ServingSnapshot {
        crate::snapshot::ServingSnapshot::capture_with_hot_rows(
            self.serving_model.clone(),
            self.hot_filter.clone(),
            self.steps,
            self.build_hot_row_cache(),
        )
    }

    /// Build the snapshot's hot-row cache from the live access histograms: per table,
    /// per table, the `hot_cache_fraction · num_rows` most-accessed ids (the head of the
    /// Zipf access CDF) get their rows dequantized into the cache. Empty when the cache
    /// is disabled (`hot_cache_fraction == 0`) or no traffic has been recorded yet.
    fn build_hot_row_cache(&self) -> crate::snapshot::HotRowCache {
        if self.config.hot_cache_fraction <= 0.0 {
            return crate::snapshot::HotRowCache::default();
        }
        let ids: Vec<Vec<usize>> = self
            .access
            .iter()
            .map(|h| {
                if h.total_accesses() == 0 {
                    return Vec::new();
                }
                // Strict top-k selection, not a count threshold: on a thinly-warmed
                // histogram the top-fraction threshold collapses to 1 and a
                // "count ≥ threshold" rule would admit every touched id — at production
                // geometry that is tens of megabytes of "cache" holding the Zipf tail.
                let k = ((h.num_ids() as f64) * self.config.hot_cache_fraction).round() as usize;
                h.top_k_ids(k)
            })
            .collect();
        crate::snapshot::HotRowCache::build(&self.serving_model, &ids)
    }

    /// Deterministic FNV-1a checksum of the node's full update-visible state: the serving
    /// model's embedding rows, every LoRA table's rank / active `A` rows / `B` factor,
    /// and the step counter. Two nodes that went through the same serve/update history
    /// have equal checksums; the determinism-parity tests compare these.
    #[must_use]
    pub fn state_checksum(&self) -> u64 {
        let mut hash = crate::snapshot::model_checksum(&self.serving_model, self.steps);
        for lora in &self.loras {
            hash = crate::snapshot::fnv1a_word(hash, lora.rank() as u64);
            let mut indices = lora.active_indices();
            indices.sort_unstable();
            for idx in indices {
                hash = crate::snapshot::fnv1a_word(hash, idx as u64);
                for v in lora.a_row_or_zeros(idx) {
                    hash = crate::snapshot::fnv1a_word(hash, v.to_bits());
                }
            }
            for &v in lora.b() {
                hash = crate::snapshot::fnv1a_word(hash, v.to_bits());
            }
        }
        hash
    }

    /// Evaluate the serving model on a labelled batch: `(AUC, mean log loss)`.
    #[must_use]
    pub fn evaluate(&self, batch: &MiniBatch) -> (Option<f64>, f64) {
        let mut auc = Auc::new();
        let mut ll = LogLoss::new();
        for sample in batch.iter() {
            let p = self.predict(sample);
            auc.record(p, sample.label);
            ll.record(p, sample.label);
        }
        (auc.value(), ll.value().unwrap_or(0.0))
    }

    /// Run one online update round at `time_minutes`: sample a mini-batch of `batch_size`
    /// from the retention buffer, train the LoRA factors, refresh the serving rows, and —
    /// every `adaptation_interval_steps` rounds — adapt the rank and prune the tables.
    ///
    /// Returns a report; a round with an empty buffer is a no-op with zero rows updated.
    pub fn online_update_round(
        &mut self,
        _time_minutes: f64,
        batch_size: usize,
    ) -> UpdateRoundReport {
        let batch = self.buffer.sample_batch(&mut self.rng, batch_size.max(1));
        if batch.is_empty() {
            return UpdateRoundReport {
                loss: 0.0,
                rows_updated: 0,
                touched_rows: Vec::new(),
                adapted: false,
                ranks: self.current_ranks(),
                pruned_rows: 0,
                lora_memory_bytes: self.lora_memory_bytes(),
            };
        }
        let report = self
            .trainer
            .train_step(&self.serving_model, &mut self.loras, &batch);
        self.steps += 1;

        // Refresh the serving rows for every touched index and mark them hot.
        let mut touched_rows = Vec::new();
        for (table_idx, touched) in report.touched_per_table.iter().enumerate() {
            for &row in touched {
                let eff = self.loras[table_idx]
                    .effective_row(row, self.base_model.table(table_idx).row(row));
                self.serving_model.tables_mut()[table_idx].set_row(row, &eff);
                touched_rows.push((table_idx, row));
            }
            self.hot_filter.mark_all(table_idx, touched.iter().copied());
            self.pruners[table_idx].record_step(touched.iter().copied());
            self.rank_adapters[table_idx].observe(&report.gradients[table_idx]);
        }

        // Periodic adaptation (Algorithm 1).
        let adapted = self
            .steps
            .is_multiple_of(self.config.adaptation_interval_steps as u64);
        let mut pruned_rows = 0usize;
        if adapted {
            for table_idx in 0..self.loras.len() {
                let decision = self.rank_adapters[table_idx].adapt();
                self.loras[table_idx].resize_rank(decision.rank);

                // Retune τ_prune from the live access skew (top hot_fraction boundary).
                let threshold =
                    self.access[table_idx].threshold_for_top_fraction(self.config.hot_fraction);
                if threshold != u64::MAX {
                    self.pruners[table_idx].set_prune_threshold(threshold.max(1));
                }
                let prune = self.pruners[table_idx].decide();
                pruned_rows += self.loras[table_idx].prune_to(&prune.active_indices);
                self.hot_filter
                    .retain(table_idx, &self.loras[table_idx].active_indices());
            }
        }

        UpdateRoundReport {
            loss: report.loss,
            rows_updated: report.rows_updated,
            touched_rows,
            adapted,
            ranks: self.current_ranks(),
            pruned_rows,
            lora_memory_bytes: self.lora_memory_bytes(),
        }
    }

    /// The node's current LoRA support: every `(table, row)` index with an active `A`
    /// row, in ascending order. This is what a cross-node synchroniser (in-process
    /// [`crate::sync::SparseLoraSync`] or a socket-based driver) gathers from each
    /// replica before computing the priority merge.
    #[must_use]
    pub fn lora_support(&self) -> Vec<(usize, usize)> {
        let mut support = Vec::new();
        for (table, lora) in self.loras.iter().enumerate() {
            for row in lora.active_indices() {
                support.push((table, row));
            }
        }
        support
    }

    /// Apply one shipped base-embedding row (the wire form of the QuickUpdate-α% pull):
    /// overwrite `(table, row)` of the frozen base model with `values` and rematerialise
    /// the serving view — keeping any live LoRA correction applied on top, exactly like
    /// [`Self::partial_sync`] does when it holds the whole source model.
    ///
    /// # Panics
    ///
    /// Panics if `table`/`row` is out of bounds or `values.len()` is not the embedding
    /// dimension.
    pub fn apply_embedding_row_pull(&mut self, table: usize, row: usize, values: &[f64]) {
        self.base_model.tables_mut()[table].set_row(row, values);
        if self.loras[table].is_active(row) {
            self.refresh_serving_row(table, row);
        } else {
            self.serving_model.tables_mut()[table].set_row(row, values);
        }
    }

    /// Export the LoRA `A` row of `(table, row)`: the active row, or zeros at the table's
    /// current rank. This is what a [`crate::sync::SparseLoraSync`] merge ships to peers.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    #[must_use]
    pub fn export_lora_row(&self, table: usize, row: usize) -> Vec<f64> {
        self.loras[table].a_row_or_zeros(row)
    }

    /// Import a merged LoRA `A` row from a peer node: the row is resized to the local
    /// adapter's rank, installed, the serving-model row is rematerialised so the imported
    /// correction is immediately visible to predictions, and the index is marked hot.
    ///
    /// # Panics
    ///
    /// Panics if `table` or `row` is out of bounds.
    pub fn import_lora_row(&mut self, table: usize, row: usize, mut values: Vec<f64>) {
        values.resize(self.loras[table].rank(), 0.0);
        self.loras[table].set_a_row(row, values);
        self.refresh_serving_row(table, row);
        self.hot_filter.mark(table, row);
    }

    /// Rematerialise the serving-model rows of every active LoRA index (all tables) and
    /// mark them hot. Called after a cross-node synchronisation rewrites `A` rows and `B`
    /// factors: rows materialised during earlier rounds may be stale with respect to the
    /// post-merge factors.
    pub fn refresh_serving_rows(&mut self) {
        for table in 0..self.loras.len() {
            for row in self.loras[table].active_indices() {
                self.refresh_serving_row(table, row);
                self.hot_filter.mark(table, row);
            }
        }
    }

    fn refresh_serving_row(&mut self, table: usize, row: usize) {
        let eff = self.loras[table].effective_row(row, self.base_model.table(table).row(row));
        self.serving_model.tables_mut()[table].set_row(row, &eff);
    }

    /// Absorb the accumulated LoRA deltas into the base model (tiered mid-term step) and
    /// clear the adapters and hot filter. The serving model is left unchanged (it already
    /// reflects the deltas).
    pub fn merge_lora_into_base(&mut self) {
        for (table_idx, lora) in self.loras.iter_mut().enumerate() {
            lora.merge_into(&mut self.base_model.tables_mut()[table_idx]);
        }
        self.hot_filter.clear();
    }

    /// Partial parameter synchronisation (the QuickUpdate-α% transfer rule): copy the
    /// top `fraction` of embedding rows by parameter change from `source` into the frozen
    /// base model, then rematerialise the serving view of every touched row so any live
    /// LoRA correction stays applied on top of the fresh parameters. Returns the number
    /// of rows pulled.
    ///
    /// # Panics
    ///
    /// Panics if `source` has a different table geometry than this node's model.
    pub fn partial_sync(&mut self, source: &DlrmModel, fraction: f64) -> usize {
        let pulled = self.base_model.pull_top_changed_rows(source, fraction);
        let mut rows = 0usize;
        for (table, indices) in pulled.iter().enumerate() {
            for &row in indices {
                rows += 1;
                if self.loras[table].is_active(row) {
                    self.refresh_serving_row(table, row);
                } else {
                    let fresh = self.base_model.table(table).row(row).to_vec();
                    self.serving_model.tables_mut()[table].set_row(row, &fresh);
                }
            }
        }
        rows
    }

    /// Full-parameter synchronisation: replace both the base and the serving model with a
    /// fresh model from the training cluster, dropping every local LoRA correction
    /// (paper Fig. 8, the hourly full update that bounds model drift).
    pub fn full_sync(&mut self, fresh_model: DlrmModel) {
        self.base_model = fresh_model.clone();
        let mut serving = fresh_model;
        serving.convert_embedding_storage(self.config.serving_storage);
        self.serving_model = serving;
        for lora in &mut self.loras {
            lora.clear();
        }
        self.hot_filter.clear();
    }
}

/// A [`ServingNode`] participates in sparse cross-node synchronisation directly: imports
/// go through [`ServingNode::import_lora_row`] so the serving view stays consistent, and
/// the post-merge callback rematerialises every active row against the broadcast factors.
impl crate::sync::LoraPeer for ServingNode {
    fn lora_rank(&self, table: usize) -> usize {
        self.loras[table].rank()
    }

    fn export_a_row(&self, table: usize, row: usize) -> Vec<f64> {
        self.export_lora_row(table, row)
    }

    fn import_a_row(&mut self, table: usize, row: usize, mut values: Vec<f64>) {
        // Deliberately *not* import_lora_row: the table's B factor may still be
        // broadcast after this call, so materialising here would be wasted work —
        // finish_sync() rematerialises every active row once the factors are final.
        values.resize(self.loras[table].rank(), 0.0);
        self.loras[table].set_a_row(row, values);
        self.hot_filter.mark(table, row);
    }

    fn export_b(&self, table: usize) -> Vec<f64> {
        self.loras[table].b().to_vec()
    }

    fn import_b(&mut self, table: usize, b: &[f64], source_rank: usize) {
        self.loras[table].import_b(b, source_rank);
    }

    fn finish_sync(&mut self) {
        self.refresh_serving_rows();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_dlrm::model::DlrmConfig;
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 300,
            ..WorkloadConfig::default()
        })
    }

    fn node() -> ServingNode {
        let model = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            11,
        );
        ServingNode::new(model, LiveUpdateConfig::default())
    }

    #[test]
    #[should_panic(expected = "invalid LiveUpdate configuration")]
    fn invalid_config_rejected() {
        let model = DlrmModel::new(DlrmConfig::tiny(1, 10, 4), 0);
        let cfg = LiveUpdateConfig {
            variance_threshold: 0.0,
            ..LiveUpdateConfig::default()
        };
        let _ = ServingNode::new(model, cfg);
    }

    #[test]
    fn serve_batch_fills_buffer_and_counts() {
        let mut n = node();
        let mut w = workload();
        let batch = w.batch_at(0.0, 32);
        let report = n.serve_batch(0.0, &batch);
        assert_eq!(report.requests, 32);
        assert_eq!(
            report.lora_corrected_lookups, 0,
            "nothing is hot before any update"
        );
        assert!(report.mean_prediction > 0.0 && report.mean_prediction < 1.0);
        assert_eq!(n.buffered_records(), 32);
    }

    #[test]
    fn update_round_trains_and_marks_hot() {
        let mut n = node();
        let mut w = workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        let before_mem = n.lora_memory_bytes();
        let report = n.online_update_round(5.0, 32);
        assert!(report.rows_updated > 0);
        assert!(report.loss > 0.0);
        assert!(n.lora_memory_bytes() >= before_mem);
        // Serving the same traffic again now takes the LoRA-corrected path for hot ids.
        let serve = n.serve_batch(5.0, &w.batch_at(5.0, 64));
        assert!(serve.lora_corrected_lookups > 0);
        assert_eq!(n.steps(), 1);
    }

    #[test]
    fn update_round_with_empty_buffer_is_noop() {
        let mut n = node();
        let report = n.online_update_round(0.0, 32);
        assert_eq!(report.rows_updated, 0);
        assert!(!report.adapted);
        assert_eq!(n.steps(), 0);
    }

    #[test]
    fn serving_rows_reflect_lora_corrections() {
        let mut n = node();
        let mut w = workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 64);
        // At least one serving row must now differ from the base model's row.
        let mut any_diff = false;
        for t in 0..2 {
            for &idx in &n.loras[t].active_indices() {
                let base = n.base_model.table(t).row(idx);
                let serving = n.serving_model.table(t).row(idx);
                if base.iter().zip(serving).any(|(a, b)| (a - b).abs() > 1e-12) {
                    any_diff = true;
                }
            }
        }
        assert!(
            any_diff,
            "LoRA corrections must be visible in the serving model"
        );
    }

    #[test]
    fn adaptation_triggers_on_interval() {
        let model = DlrmModel::new(DlrmConfig::tiny(1, 200, 8), 5);
        let cfg = LiveUpdateConfig {
            adaptation_interval_steps: 3,
            ..LiveUpdateConfig::default()
        };
        let mut n = ServingNode::new(model, cfg);
        let mut w = SyntheticWorkload::new(WorkloadConfig {
            num_tables: 1,
            table_size: 200,
            ..WorkloadConfig::default()
        });
        n.serve_batch(0.0, &w.batch_at(0.0, 96));
        let mut adapted_rounds = 0;
        for i in 0..6 {
            let r = n.online_update_round(i as f64, 32);
            if r.adapted {
                adapted_rounds += 1;
                assert!(!r.ranks.is_empty());
            }
        }
        assert_eq!(adapted_rounds, 2, "adaptation every 3 steps over 6 steps");
    }

    #[test]
    fn online_training_improves_fit_to_buffered_traffic() {
        let mut n = node();
        let mut w = workload();
        let eval = w.batch_at(0.0, 256);
        n.serve_batch(0.0, &eval);
        let (_, ll_before) = n.evaluate(&eval);
        for _ in 0..40 {
            n.online_update_round(1.0, 64);
        }
        let (_, ll_after) = n.evaluate(&eval);
        assert!(
            ll_after < ll_before,
            "online LoRA training should improve log loss: {ll_before} -> {ll_after}"
        );
    }

    #[test]
    fn full_sync_resets_lora_state() {
        let mut n = node();
        let mut w = workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        assert!(n.loras().iter().any(|l| l.active_rows() > 0));
        let fresh = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            99,
        );
        n.full_sync(fresh.clone());
        assert!(n.loras().iter().all(|l| l.active_rows() == 0));
        assert_eq!(n.serving_model(), &fresh);
        // Buffer is retained across syncs (it holds raw traffic, not model state).
        assert!(n.buffered_records() > 0);
    }

    #[test]
    fn merge_lora_into_base_keeps_serving_view() {
        let mut n = node();
        let mut w = workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let serving_before = n.serving_model().clone();
        n.merge_lora_into_base();
        assert!(n.loras().iter().all(|l| l.active_rows() == 0));
        assert_eq!(n.serving_model(), &serving_before);
        // Base now equals the serving view on previously-hot rows.
        for t in 0..2 {
            for idx in 0..300 {
                let b = n.base_model.table(t).row(idx);
                let s = n.serving_model().table(t).row(idx);
                for (x, y) in b.iter().zip(s) {
                    assert!((x - y).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn lora_support_lists_active_rows_across_tables() {
        let mut n = node();
        assert!(n.lora_support().is_empty());
        n.import_lora_row(0, 5, vec![1.0; 4]);
        n.import_lora_row(1, 9, vec![1.0; 4]);
        n.import_lora_row(0, 2, vec![1.0; 4]);
        assert_eq!(n.lora_support(), vec![(0, 2), (0, 5), (1, 9)]);
    }

    #[test]
    fn apply_embedding_row_pull_moves_base_and_serving() {
        let mut n = node();
        let fresh = vec![0.25; 8];
        // Inactive row: the serving view takes the shipped values verbatim.
        n.apply_embedding_row_pull(0, 7, &fresh);
        assert_eq!(n.base_model.table(0).row(7), &fresh[..]);
        assert_eq!(n.serving_model().table(0).row(7), &fresh[..]);
        // Active LoRA row: the correction stays applied on top of the new base.
        n.import_lora_row(0, 3, vec![1.0; 4]);
        n.apply_embedding_row_pull(0, 3, &fresh);
        assert_eq!(n.base_model.table(0).row(3), &fresh[..]);
        let expected = n.loras[0].effective_row(3, &fresh);
        assert_eq!(n.serving_model().table(0).row(3), &expected[..]);
        assert_ne!(n.serving_model().table(0).row(3), &fresh[..]);
    }

    #[test]
    fn import_lora_row_is_visible_to_predictions() {
        let mut n = node();
        let base_row = n.base_model.table(0).row(5).to_vec();
        assert_eq!(n.serving_model().table(0).row(5), &base_row[..]);
        // Import a non-zero A row as a peer's merge would; the serving row must move.
        n.import_lora_row(0, 5, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(n.export_lora_row(0, 5), vec![1.0, 1.0, 1.0, 1.0]);
        let expected = n.loras[0].effective_row(5, &base_row);
        assert_eq!(n.serving_model().table(0).row(5), &expected[..]);
        assert!(n.serving_model().table(0).row(5) != &base_row[..]);
        // Unknown rows export as zeros at the current rank.
        assert_eq!(n.export_lora_row(0, 6), vec![0.0; 4]);
    }

    #[test]
    fn refresh_serving_rows_repairs_stale_b() {
        let mut n = node();
        n.import_lora_row(0, 9, vec![1.0, 0.0, 0.0, 0.0]);
        // Overwrite B behind the serving model's back (as a sync broadcast does), then
        // refresh: the materialised row must track the new factors.
        let dim = n.loras[0].dim();
        n.loras[0].import_b(&vec![0.5; 4 * dim], 4);
        let stale = n.serving_model().table(0).row(9).to_vec();
        n.refresh_serving_rows();
        let fresh = n.serving_model().table(0).row(9).to_vec();
        assert_ne!(stale, fresh);
        let expected = n.loras[0].effective_row(9, n.base_model.table(0).row(9));
        assert_eq!(fresh, expected);
    }

    #[test]
    fn memory_fraction_stays_small() {
        let mut n = node();
        let mut w = workload();
        for t in 0..5 {
            n.serve_batch(t as f64, &w.batch_at(t as f64, 64));
            n.online_update_round(t as f64, 64);
        }
        assert!(
            n.lora_memory_fraction() < 0.25,
            "LoRA memory should stay a small fraction of the base: {}",
            n.lora_memory_fraction()
        );
    }
}
