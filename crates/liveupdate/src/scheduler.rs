//! Adaptive NUMA/CCD resource partitioning (paper §IV-D, Algorithm 2).
//!
//! Before each training cycle the controller looks at the measured P99 inference latency:
//! if it exceeds the high threshold, one CCD is moved from training to inference; if it is
//! below the low threshold (and training has not reached its cap), one CCD moves back to
//! training. All moves respect the minimum inference allocation and the training cap.

use liveupdate_sim::numa::CcdPartition;
use serde::{Deserialize, Serialize};

/// What the controller did in one adaptation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerAction {
    /// One CCD moved from training to inference (latency too high).
    GaveCcdToInference,
    /// One CCD moved from inference to training (latency comfortably low).
    GaveCcdToTraining,
    /// No change (latency within the hysteresis band, or a bound was hit).
    NoChange,
}

/// The Algorithm 2 controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCcdScheduler {
    partition: CcdPartition,
    high_threshold_ms: f64,
    low_threshold_ms: f64,
    min_inference_ccds: usize,
    max_training_ccds: usize,
    history: Vec<SchedulerAction>,
}

impl AdaptiveCcdScheduler {
    /// Create a controller over an existing partition.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are not ordered (`low < high`) or the bounds are
    /// unsatisfiable for the partition's CCD count.
    #[must_use]
    pub fn new(
        partition: CcdPartition,
        high_threshold_ms: f64,
        low_threshold_ms: f64,
        min_inference_ccds: usize,
        max_training_ccds: usize,
    ) -> Self {
        assert!(
            low_threshold_ms < high_threshold_ms,
            "low threshold must be below the high threshold"
        );
        let total = partition.cpu().num_ccds;
        assert!(
            min_inference_ccds <= total,
            "min_inference_ccds ({min_inference_ccds}) exceeds the CCD count ({total})"
        );
        Self {
            partition,
            high_threshold_ms,
            low_threshold_ms,
            min_inference_ccds,
            max_training_ccds,
            history: Vec::new(),
        }
    }

    /// The current partition.
    #[must_use]
    pub fn partition(&self) -> &CcdPartition {
        &self.partition
    }

    /// Number of CCDs currently assigned to training.
    #[must_use]
    pub fn training_ccds(&self) -> usize {
        self.partition.training_ccds()
    }

    /// Number of CCDs currently assigned to inference.
    #[must_use]
    pub fn inference_ccds(&self) -> usize {
        self.partition.inference_ccds()
    }

    /// Actions taken so far, oldest first.
    #[must_use]
    pub fn history(&self) -> &[SchedulerAction] {
        &self.history
    }

    /// One adaptation cycle (Algorithm 2 lines 6–12) given the measured P99 latency of the
    /// monitoring window. Returns the action taken.
    pub fn step(&mut self, measured_p99_ms: f64) -> SchedulerAction {
        let action = if measured_p99_ms >= self.high_threshold_ms {
            // Latency too high: take a CCD away from training if inference can still grow.
            if self.partition.training_ccds() > 0 && self.partition.move_ccd_to_inference() {
                SchedulerAction::GaveCcdToInference
            } else {
                SchedulerAction::NoChange
            }
        } else if measured_p99_ms <= self.low_threshold_ms
            && self.partition.training_ccds() < self.max_training_ccds
            && self.partition.inference_ccds() > self.min_inference_ccds
        {
            if self.partition.move_ccd_to_training() {
                SchedulerAction::GaveCcdToTraining
            } else {
                SchedulerAction::NoChange
            }
        } else {
            SchedulerAction::NoChange
        };
        self.history.push(action);
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_sim::cpu::CpuSpec;

    fn scheduler() -> AdaptiveCcdScheduler {
        // 12 CCDs, start with 10 for inference / 2 for training, as in paper Fig. 13.
        AdaptiveCcdScheduler::new(CcdPartition::new(CpuSpec::small(12), 10), 10.0, 6.0, 4, 4)
    }

    #[test]
    #[should_panic(expected = "low threshold must be below")]
    fn unordered_thresholds_rejected() {
        let _ = AdaptiveCcdScheduler::new(CcdPartition::new(CpuSpec::small(4), 2), 5.0, 10.0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds the CCD count")]
    fn impossible_min_inference_rejected() {
        let _ = AdaptiveCcdScheduler::new(CcdPartition::new(CpuSpec::small(4), 2), 10.0, 6.0, 8, 2);
    }

    #[test]
    fn high_latency_reclaims_ccd_for_inference() {
        let mut s = scheduler();
        assert_eq!(s.step(15.0), SchedulerAction::GaveCcdToInference);
        assert_eq!(s.inference_ccds(), 11);
        assert_eq!(s.training_ccds(), 1);
        assert_eq!(s.step(12.0), SchedulerAction::GaveCcdToInference);
        assert_eq!(s.training_ccds(), 0);
        // Nothing left to take.
        assert_eq!(s.step(12.0), SchedulerAction::NoChange);
        assert_eq!(s.history().len(), 3);
    }

    #[test]
    fn low_latency_gives_ccd_back_to_training() {
        let mut s = scheduler();
        assert_eq!(s.step(3.0), SchedulerAction::GaveCcdToTraining);
        assert_eq!(s.training_ccds(), 3);
        assert_eq!(s.step(3.0), SchedulerAction::GaveCcdToTraining);
        assert_eq!(s.training_ccds(), 4);
        // Training cap reached.
        assert_eq!(s.step(3.0), SchedulerAction::NoChange);
        assert_eq!(s.training_ccds(), 4);
    }

    #[test]
    fn hysteresis_band_makes_no_change() {
        let mut s = scheduler();
        assert_eq!(s.step(8.0), SchedulerAction::NoChange);
        assert_eq!(s.inference_ccds(), 10);
        assert_eq!(s.training_ccds(), 2);
    }

    #[test]
    fn min_inference_bound_respected() {
        // Start with inference already at the minimum.
        let mut s =
            AdaptiveCcdScheduler::new(CcdPartition::new(CpuSpec::small(8), 4), 10.0, 6.0, 4, 8);
        assert_eq!(s.step(1.0), SchedulerAction::NoChange);
        assert_eq!(s.inference_ccds(), 4);
    }

    #[test]
    fn oscillating_latency_converges_to_stable_band() {
        let mut s = scheduler();
        // Latency follows the training allocation: more training CCDs → higher latency.
        for _ in 0..20 {
            let p99 = 4.0 + 2.5 * s.training_ccds() as f64;
            s.step(p99);
        }
        // The controller should settle where p99 is inside [6, 10] ms: 1 or 2 training CCDs.
        let final_training = s.training_ccds();
        assert!(
            (1..=2).contains(&final_training),
            "settled at {final_training} training CCDs"
        );
    }
}
