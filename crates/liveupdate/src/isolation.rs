//! Performance-isolation experiments: cache contention, CCD scheduling and data reuse.
//!
//! This module reproduces the mechanism behind paper Figs. 11 and 16. Inference and the
//! co-located LoRA trainer both stream embedding rows through the CPU caches; whether they
//! share an L3 (naive co-location) or own disjoint CCDs (NUMA-aware scheduling), and
//! whether the trainer re-reads rows the inference path already fetched (shadow-table
//! reuse), determines the L3 hit ratios, the DRAM pressure, and ultimately the serving P99.
//!
//! The experiment drives real [`LruCache`] instances with Zipf-distributed access traces
//! and feeds the resulting hit ratios into the [`ServiceTimeModel`] / [`MemoryBandwidthModel`]
//! of the simulator, so the latency numbers emerge from the cache behaviour rather than
//! being asserted.

use liveupdate_sim::cache::LruCache;
use liveupdate_sim::latency::LatencyRecorder;
use liveupdate_sim::membw::{BandwidthDemand, MemoryBandwidthModel};
use liveupdate_sim::node::ServiceTimeModel;
use liveupdate_workload::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four configurations compared in paper Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationMode {
    /// Lower bound: no co-located training at all ("Only Infer").
    InferenceOnly,
    /// Naive co-location: training and inference share every CCD and thrash each other's
    /// L3 ("w/o Opt").
    NaiveColocation,
    /// CCDs are partitioned between the two processes ("w/ Scheduling").
    Scheduling,
    /// CCD partitioning plus shadow-table embedding reuse ("w/ Reuse+Scheduling").
    SchedulingAndReuse,
}

impl IsolationMode {
    /// All modes in the order plotted in Fig. 16.
    #[must_use]
    pub fn all() -> [IsolationMode; 4] {
        [
            IsolationMode::InferenceOnly,
            IsolationMode::NaiveColocation,
            IsolationMode::Scheduling,
            IsolationMode::SchedulingAndReuse,
        ]
    }

    /// The label used by the paper's figure.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IsolationMode::InferenceOnly => "Only Infer",
            IsolationMode::NaiveColocation => "w/o Opt",
            IsolationMode::Scheduling => "w/ Scheduling",
            IsolationMode::SchedulingAndReuse => "w/ Reuse+Scheduling",
        }
    }
}

/// Parameters of the contention experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Number of distinct embedding rows in the (scaled-down) working universe.
    pub universe_rows: usize,
    /// Bytes per embedding row.
    pub row_bytes: u64,
    /// L3 bytes owned by inference under partitioning (and by everyone under sharing).
    pub inference_l3_bytes: u64,
    /// L3 bytes owned by training under partitioning.
    pub training_l3_bytes: u64,
    /// Zipf exponent of the access skew.
    pub zipf_exponent: f64,
    /// Number of requests simulated.
    pub requests: usize,
    /// Embedding lookups simulated per request (scaled down; the service-time model
    /// extrapolates to its own per-request lookup count).
    pub lookups_per_request: usize,
    /// Training rows streamed between consecutive requests when training is active.
    pub training_rows_per_request: usize,
    /// Serving request rate used for the DRAM-demand calculation (requests/second).
    pub requests_per_second: f64,
    /// Embedding-row reads/writes per second issued by the co-located trainer (gradient
    /// reads, factor writes and optimiser state).
    pub training_lookups_per_second: f64,
    /// Bytes moved per trainer access (row read plus write-back of the update).
    pub training_bytes_per_access: u64,
    /// Fraction of the DRAM bandwidth the trainer may use under hardware-enforced QoS
    /// partitioning (its CCD share); only applies to the scheduling modes.
    pub training_bandwidth_cap_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        Self {
            universe_rows: 40_000,
            row_bytes: 128,
            inference_l3_bytes: 10 * 96 * 1024,
            training_l3_bytes: 2 * 96 * 1024,
            zipf_exponent: 1.05,
            requests: 2_000,
            lookups_per_request: 64,
            training_rows_per_request: 256,
            requests_per_second: 40_000.0,
            training_lookups_per_second: 1.0e9,
            training_bytes_per_access: 256,
            training_bandwidth_cap_fraction: 2.0 / 12.0,
            seed: 17,
        }
    }
}

/// Measured outcome of one isolation mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionOutcome {
    /// Which mode was evaluated.
    pub mode: IsolationMode,
    /// L3 hit ratio observed by the inference lookups.
    pub inference_hit_ratio: f64,
    /// L3 hit ratio observed by the training accesses (`None` for inference-only).
    pub training_hit_ratio: Option<f64>,
    /// DRAM utilisation under the combined demand.
    pub dram_utilization: f64,
    /// P50 serving latency in milliseconds.
    pub p50_ms: f64,
    /// P99 serving latency in milliseconds.
    pub p99_ms: f64,
}

/// Run the contention experiment for one isolation mode.
#[must_use]
pub fn evaluate_mode(mode: IsolationMode, config: &ContentionConfig) -> ContentionOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = ZipfSampler::new(config.universe_rows, config.zipf_exponent);
    let training_active = mode != IsolationMode::InferenceOnly;

    // Cache topology per mode: shared single cache for naive co-location, disjoint caches
    // under scheduling, inference-only gets the whole budget to itself.
    let (mut inference_cache, mut training_cache) = match mode {
        IsolationMode::InferenceOnly => (
            LruCache::new(config.inference_l3_bytes + config.training_l3_bytes),
            None,
        ),
        IsolationMode::NaiveColocation => (
            LruCache::new(config.inference_l3_bytes + config.training_l3_bytes),
            None, // shares the inference cache
        ),
        IsolationMode::Scheduling | IsolationMode::SchedulingAndReuse => (
            LruCache::new(config.inference_l3_bytes),
            Some(LruCache::new(config.training_l3_bytes)),
        ),
    };

    let mut training_hits = 0u64;
    let mut training_accesses = 0u64;
    let mut per_request_hits: Vec<f64> = Vec::with_capacity(config.requests);
    let mut recent_inference_rows: Vec<u64> = Vec::new();

    for _ in 0..config.requests {
        // Inference lookups.
        let mut hits = 0usize;
        recent_inference_rows.clear();
        for _ in 0..config.lookups_per_request {
            let row = zipf.sample(&mut rng) as u64;
            recent_inference_rows.push(row);
            if inference_cache.access(row, config.row_bytes) {
                hits += 1;
            }
        }
        per_request_hits.push(hits as f64 / config.lookups_per_request as f64);

        // Training accesses interleaved between requests.
        if training_active {
            for k in 0..config.training_rows_per_request {
                training_accesses += 1;
                let reuse_shadow = mode == IsolationMode::SchedulingAndReuse;
                let row = if reuse_shadow {
                    // Shadow-table reuse: the trainer reads rows the inference path just
                    // fetched (they sit warm in the shared buffer / its own L3).
                    recent_inference_rows[k % recent_inference_rows.len()]
                } else {
                    // Without reuse the trainer streams over the retention buffer's samples
                    // and its own factor/optimiser state: a wide, write-heavy working set
                    // that is uncorrelated with what is currently cache-resident.
                    rng.gen_range(0..config.universe_rows) as u64
                };
                let hit = match (&mut training_cache, mode) {
                    // Naive co-location: training thrashes the single shared cache.
                    (None, IsolationMode::NaiveColocation) => {
                        inference_cache.access(row, config.row_bytes)
                    }
                    (Some(cache), _) => cache.access(row, config.row_bytes),
                    (None, _) => false,
                };
                if hit {
                    training_hits += 1;
                }
            }
        }
    }

    let inference_hit_ratio =
        per_request_hits.iter().sum::<f64>() / per_request_hits.len().max(1) as f64;
    let training_hit_ratio = if training_active && training_accesses > 0 {
        Some(training_hits as f64 / training_accesses as f64)
    } else {
        None
    };

    // DRAM demand: inference misses plus training misses (reuse keeps the trainer out of
    // DRAM almost entirely).
    let service = ServiceTimeModel::default();
    let mut memory = MemoryBandwidthModel::ddr5_dual_socket();
    memory.set_demand(BandwidthDemand::new(
        "inference",
        service.dram_demand_bytes_per_sec(config.requests_per_second, inference_hit_ratio),
    ));
    if let Some(train_hit) = training_hit_ratio {
        let raw_demand = config.training_lookups_per_second
            * (1.0 - train_hit)
            * config.training_bytes_per_access as f64;
        // Under NUMA-aware scheduling the trainer's memory traffic is confined to its CCD
        // share by hardware-enforced QoS; naive co-location has no such cap.
        let demand = match mode {
            IsolationMode::Scheduling | IsolationMode::SchedulingAndReuse => raw_demand.min(
                config.training_bandwidth_cap_fraction.clamp(0.0, 1.0)
                    * memory.peak_bytes_per_second,
            ),
            _ => raw_demand,
        };
        memory.set_demand(BandwidthDemand::new("training", demand));
    }

    // Per-request latency distribution from the per-request hit ratios.
    let mut latencies = LatencyRecorder::new();
    for hit in &per_request_hits {
        latencies.record(service.request_latency_ms(*hit, &memory));
    }

    ContentionOutcome {
        mode,
        inference_hit_ratio,
        training_hit_ratio,
        dram_utilization: memory.utilization(),
        p50_ms: latencies.p50().unwrap_or(0.0),
        p99_ms: latencies.p99().unwrap_or(0.0),
    }
}

/// Evaluate every isolation mode with the same configuration (the Fig. 16 ablation).
#[must_use]
pub fn evaluate_all(config: &ContentionConfig) -> Vec<ContentionOutcome> {
    IsolationMode::all()
        .iter()
        .map(|m| evaluate_mode(*m, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<ContentionOutcome> {
        evaluate_all(&ContentionConfig {
            requests: 600,
            ..ContentionConfig::default()
        })
    }

    fn get(outcomes: &[ContentionOutcome], mode: IsolationMode) -> ContentionOutcome {
        outcomes
            .iter()
            .find(|o| o.mode == mode)
            .cloned()
            .expect("mode present")
    }

    #[test]
    fn all_modes_evaluated_with_labels() {
        let o = outcomes();
        assert_eq!(o.len(), 4);
        assert_eq!(IsolationMode::all()[0].label(), "Only Infer");
        assert_eq!(IsolationMode::all()[1].label(), "w/o Opt");
    }

    #[test]
    fn naive_colocation_hurts_inference_hit_ratio() {
        let o = outcomes();
        let only = get(&o, IsolationMode::InferenceOnly);
        let naive = get(&o, IsolationMode::NaiveColocation);
        assert!(
            naive.inference_hit_ratio < only.inference_hit_ratio - 0.02,
            "naive co-location should reduce the hit ratio: {} vs {}",
            naive.inference_hit_ratio,
            only.inference_hit_ratio
        );
    }

    #[test]
    fn scheduling_restores_inference_hit_ratio() {
        let o = outcomes();
        let naive = get(&o, IsolationMode::NaiveColocation);
        let sched = get(&o, IsolationMode::Scheduling);
        assert!(sched.inference_hit_ratio > naive.inference_hit_ratio);
    }

    #[test]
    fn reuse_raises_training_hit_ratio() {
        let o = outcomes();
        let sched = get(&o, IsolationMode::Scheduling);
        let reuse = get(&o, IsolationMode::SchedulingAndReuse);
        let sched_train = sched.training_hit_ratio.expect("training active");
        let reuse_train = reuse.training_hit_ratio.expect("training active");
        assert!(
            reuse_train > sched_train + 0.2,
            "reuse should raise the training hit ratio: {sched_train} -> {reuse_train}"
        );
    }

    #[test]
    fn p99_ordering_matches_figure_16() {
        let o = outcomes();
        let only = get(&o, IsolationMode::InferenceOnly);
        let naive = get(&o, IsolationMode::NaiveColocation);
        let sched = get(&o, IsolationMode::Scheduling);
        let reuse = get(&o, IsolationMode::SchedulingAndReuse);
        // Naive co-location is the worst; scheduling helps; reuse+scheduling is nearly
        // indistinguishable from inference-only.
        assert!(
            naive.p99_ms > only.p99_ms * 1.3,
            "naive {} vs only {}",
            naive.p99_ms,
            only.p99_ms
        );
        assert!(sched.p99_ms < naive.p99_ms);
        assert!(reuse.p99_ms <= sched.p99_ms + 1e-9);
        assert!(
            reuse.p99_ms < only.p99_ms * 1.25,
            "reuse {} vs only {}",
            reuse.p99_ms,
            only.p99_ms
        );
    }

    #[test]
    fn inference_only_has_no_training_stats() {
        let o = outcomes();
        assert!(get(&o, IsolationMode::InferenceOnly)
            .training_hit_ratio
            .is_none());
        assert!(get(&o, IsolationMode::NaiveColocation)
            .training_hit_ratio
            .is_some());
    }

    #[test]
    fn dram_utilization_bounded_and_ordered() {
        let o = outcomes();
        for out in &o {
            assert!((0.0..=1.0).contains(&out.dram_utilization));
        }
        let only = get(&o, IsolationMode::InferenceOnly);
        let naive = get(&o, IsolationMode::NaiveColocation);
        assert!(naive.dram_utilization >= only.dram_utilization);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ContentionConfig {
            requests: 300,
            ..ContentionConfig::default()
        };
        let a = evaluate_mode(IsolationMode::Scheduling, &cfg);
        let b = evaluate_mode(IsolationMode::Scheduling, &cfg);
        assert_eq!(a, b);
    }
}
