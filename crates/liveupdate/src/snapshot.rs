//! Immutable serving snapshots: the read-only half of the engine's serve API.
//!
//! The paper's "near-zero overhead" claim rests on the inference path never blocking on
//! the co-located trainer (Fig. 7). [`ServingSnapshot`] makes that property a type: it is
//! a frozen copy of everything a prediction needs — the materialised serving model and
//! the hot-index filter — with no `&mut` method at all. The real multithreaded runtime
//! (`liveupdate_runtime`) publishes one snapshot per update round behind an atomic epoch
//! swap; worker threads serve from whichever snapshot they last observed, and the updater
//! trains on its own mutable [`ServingNode`](crate::engine::ServingNode) without ever
//! sharing a lock with the read path.
//!
//! Every snapshot carries an FNV-1a checksum of its model state, computed at capture
//! time. Readers can [`ServingSnapshot::verify_checksum`] to assert they never observe a
//! torn publication, and the concurrency stress tests match observed checksums against
//! the set of published ones.

use crate::engine::ServeReport;
use crate::hot_index::HotIndexFilter;
use liveupdate_dlrm::metrics::{Auc, LogLoss};
use liveupdate_dlrm::model::{DlrmModel, InferenceScratch};
use liveupdate_dlrm::sample::{MiniBatch, Sample};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a offset basis / prime (64-bit), matching the stable hash the stream sharder
/// uses — deterministic across runs and platforms.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold the little-endian bytes of one 64-bit word into an FNV-1a hash.
pub(crate) fn fnv1a_word(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over the bit patterns of every embedding-table row of `model`, seeded with
/// `steps`. MLP weights are excluded: the online update path only ever rewrites
/// embedding rows, so hashing the tables captures exactly the state a publication swaps.
#[must_use]
pub fn model_checksum(model: &DlrmModel, steps: u64) -> u64 {
    let mut hash = fnv1a_word(FNV_OFFSET, steps);
    for table in model.tables() {
        hash = fnv1a_word(hash, table.num_rows() as u64);
        // for_each_row decodes quantized storage (master rows exact), so the checksum is
        // over the f64 values predictions actually see, whatever the row storage.
        table.for_each_row(|_, row| {
            for &v in row {
                hash = fnv1a_word(hash, v.to_bits());
            }
        });
    }
    hash
}

/// Dequantized f64 copies of the most-accessed embedding rows, frozen into a snapshot.
///
/// The cache is keyed by the live Zipf access CDF (the per-table access histograms a
/// [`ServingNode`](crate::engine::ServingNode) maintains): the head of the distribution
/// serves straight from contiguous f64 rows without touching quantized storage. Cached
/// rows are built with [`EmbeddingTable::row_into`](liveupdate_dlrm::EmbeddingTable::row_into),
/// so a hit is bit-identical to decoding the backing store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HotRowCache {
    tables: Vec<CachedTable>,
    /// Per-table hit/miss tallies. `Arc`-shared, so every clone of a snapshot — and,
    /// via [`HotRowCache::adopt_stats`], every successor snapshot — accumulates into
    /// the same counters: the telemetry layer reads one cumulative number per table
    /// even as publications replace the cache itself. Excluded from equality (two
    /// caches holding the same rows are the same cache, however often each was hit).
    stats: Arc<Vec<CacheTableStats>>,
}

/// Lock-free hit/miss tally of one cached table.
#[derive(Debug, Default)]
pub struct CacheTableStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheTableStats {
    /// `(hits, misses)` so far.
    #[must_use]
    pub fn get(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl PartialEq for HotRowCache {
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
    }
}

/// The cached head of one embedding table: ascending ids and their rows, flat. Lookups
/// binary-search `ids`; the Zipf head is small (thousands of rows), so the id array stays
/// L2-resident and a search costs a dozen comparisons against data already in cache. (A
/// direct-map `id → slot` index was measured and rejected: at 10⁶ rows it adds 4 MB per
/// table that every *cold* id probes, evicting exactly the rows the cache exists to keep
/// hot.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct CachedTable {
    dim: usize,
    ids: Vec<usize>,
    rows: Vec<f64>,
}

impl CachedTable {
    fn lookup(&self, id: usize) -> Option<&[f64]> {
        self.ids
            .binary_search(&id)
            .ok()
            .map(|pos| &self.rows[pos * self.dim..(pos + 1) * self.dim])
    }
}

impl HotRowCache {
    /// Build a cache holding the given row ids of every table (one id list per table),
    /// decoded from `model`'s current storage.
    ///
    /// # Panics
    ///
    /// Panics if `ids_per_table.len()` does not match the table count or any id is out
    /// of bounds.
    #[must_use]
    pub fn build(model: &DlrmModel, ids_per_table: &[Vec<usize>]) -> Self {
        assert_eq!(
            ids_per_table.len(),
            model.tables().len(),
            "hot-row cache needs one id list per table"
        );
        let tables = model
            .tables()
            .iter()
            .zip(ids_per_table)
            .map(|(table, ids)| {
                let mut ids = ids.clone();
                ids.sort_unstable();
                ids.dedup();
                let dim = table.dim();
                let mut rows = vec![0.0; ids.len() * dim];
                for (k, &id) in ids.iter().enumerate() {
                    table.row_into(id, &mut rows[k * dim..(k + 1) * dim]);
                }
                CachedTable { dim, ids, rows }
            })
            .collect::<Vec<_>>();
        let stats = Arc::new(
            (0..tables.len())
                .map(|_| CacheTableStats::default())
                .collect(),
        );
        Self { tables, stats }
    }

    /// Per-table hit/miss tally, or `None` for unknown tables (and for the default
    /// empty cache, which tallies nothing).
    #[must_use]
    pub fn table_stats(&self, table: usize) -> Option<&CacheTableStats> {
        self.stats.get(table)
    }

    /// Number of tables carrying a tally (equals the table count for built caches).
    #[must_use]
    pub fn stats_tables(&self) -> usize {
        self.stats.len()
    }

    /// Continue `prev`'s hit/miss tallies: fold whatever this cache already counted
    /// into `prev`'s counters and share them from here on. The publisher calls this
    /// when swapping a fresh snapshot in over an old one, so per-table cache telemetry
    /// is cumulative across publications instead of resetting at every epoch. A table
    /// count mismatch (different model shape) keeps the fresh tallies instead.
    pub fn adopt_stats(&mut self, prev: &HotRowCache) {
        if prev.stats.len() != self.stats.len() || Arc::ptr_eq(&prev.stats, &self.stats) {
            return;
        }
        for (old, young) in prev.stats.iter().zip(self.stats.iter()) {
            let (h, m) = young.get();
            old.hits.fetch_add(h, Ordering::Relaxed);
            old.misses.fetch_add(m, Ordering::Relaxed);
        }
        self.stats = Arc::clone(&prev.stats);
    }

    /// The cached row, or `None` on a miss (uncached id or unknown table).
    #[must_use]
    pub fn lookup(&self, table: usize, id: usize) -> Option<&[f64]> {
        self.tables.get(table).and_then(|t| t.lookup(id))
    }

    /// Cached ids of one table in ascending order (empty for unknown tables).
    #[must_use]
    pub fn cached_ids(&self, table: usize) -> &[usize] {
        self.tables.get(table).map_or(&[], |t| &t.ids)
    }

    /// Total cached rows across tables.
    #[must_use]
    pub fn cached_rows(&self) -> usize {
        self.tables.iter().map(|t| t.ids.len()).sum()
    }

    /// True when no rows are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cached_rows() == 0
    }

    /// Resident bytes of the cache (ids + f64 rows).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.ids.len() * std::mem::size_of::<usize>()
                    + t.rows.len() * std::mem::size_of::<f64>()
            })
            .sum()
    }

    /// Mean-pool `ids` of table index `table_idx` into `out`, taking each row from the
    /// cache when it is hot and from `table`'s (possibly quantized) backing storage
    /// otherwise. Partial hits are the point: a production multi-hot lookup pools dozens
    /// of ids and almost never has *all* of them in the Zipf head, so an all-or-nothing
    /// cache would silently serve everything from the backing store. Accumulation runs in
    /// id order with rows bit-identical to their decoded values (see
    /// [`EmbeddingTable::add_row_into`](liveupdate_dlrm::EmbeddingTable::add_row_into)),
    /// so any mix of hits and misses matches the uncached gather exactly.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds or `out.len()` does not match the table dim.
    pub fn pooled_gather(
        &self,
        table_idx: usize,
        ids: &[usize],
        out: &mut [f64],
        table: &liveupdate_dlrm::EmbeddingTable,
    ) {
        let Some(ct) = self.tables.get(table_idx).filter(|ct| !ct.ids.is_empty()) else {
            // No cached head for this table: every id is a miss by definition.
            if let Some(stats) = self.stats.get(table_idx) {
                stats.misses.fetch_add(ids.len() as u64, Ordering::Relaxed);
            }
            table.pooled_lookup_into(ids, out);
            return;
        };
        out.fill(0.0);
        if ids.is_empty() {
            return;
        }
        let mut hits = 0u64;
        for &id in ids {
            match ct.lookup(id) {
                Some(row) => {
                    hits += 1;
                    for (o, &v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                None => table.add_row_into(id, out),
            }
        }
        // One pair of relaxed adds per gather, not per id: the telemetry cost on the
        // serve path stays independent of pooling width.
        if let Some(stats) = self.stats.get(table_idx) {
            stats.hits.fetch_add(hits, Ordering::Relaxed);
            stats
                .misses
                .fetch_add(ids.len() as u64 - hits, Ordering::Relaxed);
        }
        let inv = 1.0 / ids.len() as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

/// The read-only serve pass shared by [`ServingSnapshot::serve_batch`] and the mutable
/// [`ServingNode::serve_batch`](crate::engine::ServingNode::serve_batch): predict every
/// sample and count the lookups that take the LoRA-corrected path. Touches no state.
pub(crate) fn readonly_serve(
    model: &DlrmModel,
    hot: &HotIndexFilter,
    batch: &MiniBatch,
) -> ServeReport {
    readonly_serve_with_predictions(model, hot, batch).0
}

/// [`readonly_serve`] that also returns the per-sample predictions in batch order — what
/// a transport tier (e.g. the TCP replica server) replies to each caller with.
pub(crate) fn readonly_serve_with_predictions(
    model: &DlrmModel,
    hot: &HotIndexFilter,
    batch: &MiniBatch,
) -> (ServeReport, Vec<f64>) {
    readonly_serve_cached(model, hot, &HotRowCache::default(), batch)
}

/// The full hot-path serve pass: scratch-buffer inference (no per-sample allocation)
/// with pooled gathers answered from the hot-row cache when every id of a lookup is
/// cached, falling back to the (possibly quantized) backing tables otherwise. Cache hits
/// are bit-identical to the fallback, so report parity between cached and uncached
/// callers is exact.
pub(crate) fn readonly_serve_cached(
    model: &DlrmModel,
    hot: &HotIndexFilter,
    cache: &HotRowCache,
    batch: &MiniBatch,
) -> (ServeReport, Vec<f64>) {
    let mut corrected = 0usize;
    let mut prediction_sum = 0.0;
    let mut predictions = Vec::with_capacity(batch.len());
    let mut scratch = InferenceScratch::default();
    for sample in batch.iter() {
        let p = model.predict_pooled_with_scratch(sample, &mut scratch, |t, ids, out| {
            cache.pooled_gather(t, ids, out, model.table(t));
        });
        prediction_sum += p;
        predictions.push(p);
        for (table_idx, ids) in sample.sparse.iter().enumerate() {
            for &id in ids {
                if hot.is_hot(table_idx, id) {
                    corrected += 1;
                }
            }
        }
    }
    let report = ServeReport {
        requests: batch.len(),
        lora_corrected_lookups: corrected,
        mean_prediction: if batch.is_empty() {
            0.0
        } else {
            prediction_sum / batch.len() as f64
        },
    };
    (report, predictions)
}

/// An immutable, self-checksummed copy of a node's serving state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSnapshot {
    serving_model: DlrmModel,
    hot_filter: HotIndexFilter,
    hot_rows: HotRowCache,
    steps: u64,
    checksum: u64,
}

impl ServingSnapshot {
    /// Capture a snapshot of `model` + `hot_filter` after `steps` online update steps.
    /// The checksum is computed here, once, by the publisher.
    #[must_use]
    pub fn capture(serving_model: DlrmModel, hot_filter: HotIndexFilter, steps: u64) -> Self {
        Self::capture_with_hot_rows(serving_model, hot_filter, steps, HotRowCache::default())
    }

    /// [`Self::capture`] with a pre-built hot-row cache (the publisher builds it from the
    /// node's access histograms before freezing the snapshot).
    #[must_use]
    pub fn capture_with_hot_rows(
        serving_model: DlrmModel,
        hot_filter: HotIndexFilter,
        steps: u64,
        hot_rows: HotRowCache,
    ) -> Self {
        let checksum = model_checksum(&serving_model, steps);
        Self {
            serving_model,
            hot_filter,
            hot_rows,
            steps,
            checksum,
        }
    }

    /// The snapshot's hot-row cache (empty unless the publisher enabled it).
    #[must_use]
    pub fn hot_rows(&self) -> &HotRowCache {
        &self.hot_rows
    }

    /// Carry `prev`'s cumulative hot-row-cache hit/miss tallies forward into this
    /// snapshot (see [`HotRowCache::adopt_stats`]). Publishers call this right before
    /// the epoch swap so cache telemetry survives snapshot replacement.
    pub fn adopt_cache_stats(&mut self, prev: &ServingSnapshot) {
        self.hot_rows.adopt_stats(&prev.hot_rows);
    }

    /// The frozen serving model (base + materialised LoRA corrections).
    #[must_use]
    pub fn serving_model(&self) -> &DlrmModel {
        &self.serving_model
    }

    /// Online update steps the source node had performed when this was captured.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The checksum computed at capture time.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recompute the checksum from the snapshot's current contents and compare it with
    /// the one stored at capture. A mismatch means a reader observed torn state — the
    /// epoch-swap publication protocol must make this impossible.
    #[must_use]
    pub fn verify_checksum(&self) -> bool {
        model_checksum(&self.serving_model, self.steps) == self.checksum
    }

    /// Predict the click probability of one request. Read-only.
    #[must_use]
    pub fn predict(&self, sample: &Sample) -> f64 {
        self.serving_model.predict(sample)
    }

    /// Serve a batch read-only: predictions plus the LoRA-corrected lookup count, with
    /// no access recording, no retention buffering, no mutation of any kind. The
    /// mutating side effects of the monolithic serve path live in
    /// [`ServingNode::ingest_batch`](crate::engine::ServingNode::ingest_batch), which the
    /// runtime's updater applies off the serve path.
    #[must_use]
    pub fn serve_batch(&self, batch: &MiniBatch) -> ServeReport {
        readonly_serve_cached(&self.serving_model, &self.hot_filter, &self.hot_rows, batch).0
    }

    /// [`Self::serve_batch`] that also returns the per-sample predictions in batch
    /// order, for callers (such as the runtime's workers answering TCP requests) that
    /// must hand each prediction back to its submitter.
    #[must_use]
    pub fn serve_batch_with_predictions(&self, batch: &MiniBatch) -> (ServeReport, Vec<f64>) {
        readonly_serve_cached(&self.serving_model, &self.hot_filter, &self.hot_rows, batch)
    }

    /// Evaluate the snapshot on a labelled batch: `(AUC, mean log loss)`.
    #[must_use]
    pub fn evaluate(&self, batch: &MiniBatch) -> (Option<f64>, f64) {
        let mut auc = Auc::new();
        let mut ll = LogLoss::new();
        for sample in batch.iter() {
            let p = self.predict(sample);
            auc.record(p, sample.label);
            ll.record(p, sample.label);
        }
        (auc.value(), ll.value().unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiveUpdateConfig;
    use crate::engine::ServingNode;
    use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn node_and_workload() -> (ServingNode, SyntheticWorkload) {
        let model = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            11,
        );
        let w = SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 300,
            ..WorkloadConfig::default()
        });
        (ServingNode::new(model, LiveUpdateConfig::default()), w)
    }

    #[test]
    fn snapshot_predictions_match_the_node() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let snap = n.snapshot();
        let batch = w.batch_at(2.0, 32);
        for sample in batch.iter() {
            assert_eq!(snap.predict(sample), n.predict(sample));
        }
        assert_eq!(snap.steps(), n.steps());
        assert!(snap.verify_checksum());
    }

    #[test]
    fn snapshot_serve_matches_mutable_serve_report() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let batch = w.batch_at(2.0, 48);
        let snap = n.snapshot();
        let ro = snap.serve_batch(&batch);
        let buffered_before = n.buffered_records();
        let mt = n.serve_batch(2.0, &batch);
        // Identical report; only the mutable path buffered the traffic.
        assert_eq!(ro, mt);
        assert_eq!(n.buffered_records(), buffered_before + batch.len());
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 96));
        let snap = n.snapshot();
        let checksum_before = snap.checksum();
        let probe = w.batch_at(1.0, 16);
        let before: Vec<f64> = probe.iter().map(|s| snap.predict(s)).collect();
        // Train the node hard; the captured snapshot must not move.
        for _ in 0..10 {
            n.online_update_round(1.0, 64);
        }
        let after: Vec<f64> = probe.iter().map(|s| snap.predict(s)).collect();
        assert_eq!(before, after, "a captured snapshot is frozen");
        assert_eq!(snap.checksum(), checksum_before);
        assert!(snap.verify_checksum());
        // And the node itself did move on.
        assert_ne!(n.snapshot().checksum(), checksum_before);
    }

    #[test]
    fn checksum_is_sensitive_to_model_and_steps() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        let a = n.snapshot();
        n.online_update_round(1.0, 32);
        let b = n.snapshot();
        assert_ne!(
            a.checksum(),
            b.checksum(),
            "training must change the checksum"
        );
        // Same state captured twice hashes identically.
        assert_eq!(b.checksum(), n.snapshot().checksum());
        assert_eq!(model_checksum(a.serving_model(), 0), a.checksum());
    }

    #[test]
    fn evaluate_matches_node_evaluate() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let batch = w.batch_at(3.0, 64);
        assert_eq!(n.snapshot().evaluate(&batch), n.evaluate(&batch));
    }

    fn quantized_cached_node() -> (ServingNode, SyntheticWorkload) {
        let model = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            11,
        );
        let cfg = LiveUpdateConfig {
            serving_storage: liveupdate_dlrm::embedding::StorageKind::I8,
            hot_cache_fraction: 0.2,
            ..LiveUpdateConfig::default()
        };
        let w = SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 300,
            ..WorkloadConfig::default()
        });
        (ServingNode::new(model, cfg), w)
    }

    #[test]
    fn hot_row_cache_hits_are_bit_identical_across_epoch_swap() {
        let (mut n, mut w) = quantized_cached_node();
        n.serve_batch(0.0, &w.batch_at(0.0, 128));
        let snap = n.snapshot();
        let cache = snap.hot_rows();
        assert!(!cache.is_empty(), "traffic must populate the hot-row cache");
        for t in 0..2 {
            for &id in cache.cached_ids(t) {
                let hit = cache.lookup(t, id).expect("cached id must hit");
                let backing = snap.serving_model().table(t).row_to_vec(id);
                assert_eq!(
                    hit,
                    &backing[..],
                    "cache hit must be bit-identical to the backing store"
                );
            }
        }
        // Epoch swap: train, republish, and re-check bit-identity on the new snapshot.
        n.online_update_round(1.0, 64);
        let swapped = n.snapshot();
        assert_ne!(
            swapped.checksum(),
            snap.checksum(),
            "the update must publish a new epoch"
        );
        let cache = swapped.hot_rows();
        assert!(!cache.is_empty());
        for t in 0..2 {
            for &id in cache.cached_ids(t) {
                let hit = cache.lookup(t, id).expect("cached id must hit");
                let backing = swapped.serving_model().table(t).row_to_vec(id);
                assert_eq!(hit, &backing[..]);
            }
        }
        // The frozen first snapshot still answers from its own (old-epoch) cache.
        for t in 0..2 {
            for &id in snap.hot_rows().cached_ids(t) {
                let hit = snap.hot_rows().lookup(t, id).expect("cached id must hit");
                let backing = snap.serving_model().table(t).row_to_vec(id);
                assert_eq!(hit, &backing[..]);
            }
        }
    }

    #[test]
    fn cached_serving_matches_uncached_bit_for_bit() {
        let (mut n, mut w) = quantized_cached_node();
        n.serve_batch(0.0, &w.batch_at(0.0, 128));
        n.online_update_round(1.0, 32);
        let snap = n.snapshot();
        assert!(!snap.hot_rows().is_empty());
        let batch = w.batch_at(2.0, 96);
        let (cached_report, cached_preds) = snap.serve_batch_with_predictions(&batch);
        // The same state captured without a cache must serve identical bits.
        let bare = ServingSnapshot::capture(
            snap.serving_model().clone(),
            HotIndexFilter::new(2),
            snap.steps(),
        );
        let (_, bare_preds) = bare.serve_batch_with_predictions(&batch);
        assert_eq!(
            cached_preds, bare_preds,
            "cache hits must not change a single bit"
        );
        assert_eq!(cached_report.requests, batch.len());
    }

    #[test]
    fn quantized_serving_snapshot_evaluates_close_to_f64() {
        let (mut nq, mut w) = quantized_cached_node();
        let (mut nf, _) = node_and_workload();
        let traffic = w.batch_at(0.0, 256);
        nq.serve_batch(0.0, &traffic);
        nf.serve_batch(0.0, &traffic);
        let eval = w.batch_at(1.0, 256);
        let (auc_q, _) = nq.snapshot().evaluate(&eval);
        let (auc_f, _) = nf.snapshot().evaluate(&eval);
        let (auc_q, auc_f) = (
            auc_q.expect("two-class batch"),
            auc_f.expect("two-class batch"),
        );
        assert!(
            (auc_q - auc_f).abs() < 0.01,
            "int8 serving must stay within the stated AUC tolerance: {auc_f} vs {auc_q}"
        );
    }
}
