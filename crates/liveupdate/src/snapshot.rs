//! Immutable serving snapshots: the read-only half of the engine's serve API.
//!
//! The paper's "near-zero overhead" claim rests on the inference path never blocking on
//! the co-located trainer (Fig. 7). [`ServingSnapshot`] makes that property a type: it is
//! a frozen copy of everything a prediction needs — the materialised serving model and
//! the hot-index filter — with no `&mut` method at all. The real multithreaded runtime
//! (`liveupdate_runtime`) publishes one snapshot per update round behind an atomic epoch
//! swap; worker threads serve from whichever snapshot they last observed, and the updater
//! trains on its own mutable [`ServingNode`](crate::engine::ServingNode) without ever
//! sharing a lock with the read path.
//!
//! Every snapshot carries an FNV-1a checksum of its model state, computed at capture
//! time. Readers can [`ServingSnapshot::verify_checksum`] to assert they never observe a
//! torn publication, and the concurrency stress tests match observed checksums against
//! the set of published ones.

use crate::engine::ServeReport;
use crate::hot_index::HotIndexFilter;
use liveupdate_dlrm::metrics::{Auc, LogLoss};
use liveupdate_dlrm::model::DlrmModel;
use liveupdate_dlrm::sample::{MiniBatch, Sample};
use serde::{Deserialize, Serialize};

/// FNV-1a offset basis / prime (64-bit), matching the stable hash the stream sharder
/// uses — deterministic across runs and platforms.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold the little-endian bytes of one 64-bit word into an FNV-1a hash.
pub(crate) fn fnv1a_word(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over the bit patterns of every embedding-table row of `model`, seeded with
/// `steps`. MLP weights are excluded: the online update path only ever rewrites
/// embedding rows, so hashing the tables captures exactly the state a publication swaps.
#[must_use]
pub fn model_checksum(model: &DlrmModel, steps: u64) -> u64 {
    let mut hash = fnv1a_word(FNV_OFFSET, steps);
    for table in model.tables() {
        hash = fnv1a_word(hash, table.num_rows() as u64);
        for row in 0..table.num_rows() {
            for &v in table.row(row) {
                hash = fnv1a_word(hash, v.to_bits());
            }
        }
    }
    hash
}

/// The read-only serve pass shared by [`ServingSnapshot::serve_batch`] and the mutable
/// [`ServingNode::serve_batch`](crate::engine::ServingNode::serve_batch): predict every
/// sample and count the lookups that take the LoRA-corrected path. Touches no state.
pub(crate) fn readonly_serve(model: &DlrmModel, hot: &HotIndexFilter, batch: &MiniBatch) -> ServeReport {
    readonly_serve_with_predictions(model, hot, batch).0
}

/// [`readonly_serve`] that also returns the per-sample predictions in batch order — what
/// a transport tier (e.g. the TCP replica server) replies to each caller with.
pub(crate) fn readonly_serve_with_predictions(
    model: &DlrmModel,
    hot: &HotIndexFilter,
    batch: &MiniBatch,
) -> (ServeReport, Vec<f64>) {
    let mut corrected = 0usize;
    let mut prediction_sum = 0.0;
    let mut predictions = Vec::with_capacity(batch.len());
    for sample in batch.iter() {
        let p = model.predict(sample);
        prediction_sum += p;
        predictions.push(p);
        for (table_idx, ids) in sample.sparse.iter().enumerate() {
            for &id in ids {
                if hot.is_hot(table_idx, id) {
                    corrected += 1;
                }
            }
        }
    }
    let report = ServeReport {
        requests: batch.len(),
        lora_corrected_lookups: corrected,
        mean_prediction: if batch.is_empty() {
            0.0
        } else {
            prediction_sum / batch.len() as f64
        },
    };
    (report, predictions)
}

/// An immutable, self-checksummed copy of a node's serving state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSnapshot {
    serving_model: DlrmModel,
    hot_filter: HotIndexFilter,
    steps: u64,
    checksum: u64,
}

impl ServingSnapshot {
    /// Capture a snapshot of `model` + `hot_filter` after `steps` online update steps.
    /// The checksum is computed here, once, by the publisher.
    #[must_use]
    pub fn capture(serving_model: DlrmModel, hot_filter: HotIndexFilter, steps: u64) -> Self {
        let checksum = model_checksum(&serving_model, steps);
        Self {
            serving_model,
            hot_filter,
            steps,
            checksum,
        }
    }

    /// The frozen serving model (base + materialised LoRA corrections).
    #[must_use]
    pub fn serving_model(&self) -> &DlrmModel {
        &self.serving_model
    }

    /// Online update steps the source node had performed when this was captured.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The checksum computed at capture time.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recompute the checksum from the snapshot's current contents and compare it with
    /// the one stored at capture. A mismatch means a reader observed torn state — the
    /// epoch-swap publication protocol must make this impossible.
    #[must_use]
    pub fn verify_checksum(&self) -> bool {
        model_checksum(&self.serving_model, self.steps) == self.checksum
    }

    /// Predict the click probability of one request. Read-only.
    #[must_use]
    pub fn predict(&self, sample: &Sample) -> f64 {
        self.serving_model.predict(sample)
    }

    /// Serve a batch read-only: predictions plus the LoRA-corrected lookup count, with
    /// no access recording, no retention buffering, no mutation of any kind. The
    /// mutating side effects of the monolithic serve path live in
    /// [`ServingNode::ingest_batch`](crate::engine::ServingNode::ingest_batch), which the
    /// runtime's updater applies off the serve path.
    #[must_use]
    pub fn serve_batch(&self, batch: &MiniBatch) -> ServeReport {
        readonly_serve(&self.serving_model, &self.hot_filter, batch)
    }

    /// [`Self::serve_batch`] that also returns the per-sample predictions in batch
    /// order, for callers (such as the runtime's workers answering TCP requests) that
    /// must hand each prediction back to its submitter.
    #[must_use]
    pub fn serve_batch_with_predictions(&self, batch: &MiniBatch) -> (ServeReport, Vec<f64>) {
        readonly_serve_with_predictions(&self.serving_model, &self.hot_filter, batch)
    }

    /// Evaluate the snapshot on a labelled batch: `(AUC, mean log loss)`.
    #[must_use]
    pub fn evaluate(&self, batch: &MiniBatch) -> (Option<f64>, f64) {
        let mut auc = Auc::new();
        let mut ll = LogLoss::new();
        for sample in batch.iter() {
            let p = self.predict(sample);
            auc.record(p, sample.label);
            ll.record(p, sample.label);
        }
        (auc.value(), ll.value().unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiveUpdateConfig;
    use crate::engine::ServingNode;
    use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn node_and_workload() -> (ServingNode, SyntheticWorkload) {
        let model = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            11,
        );
        let w = SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 300,
            ..WorkloadConfig::default()
        });
        (ServingNode::new(model, LiveUpdateConfig::default()), w)
    }

    #[test]
    fn snapshot_predictions_match_the_node() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let snap = n.snapshot();
        let batch = w.batch_at(2.0, 32);
        for sample in batch.iter() {
            assert_eq!(snap.predict(sample), n.predict(sample));
        }
        assert_eq!(snap.steps(), n.steps());
        assert!(snap.verify_checksum());
    }

    #[test]
    fn snapshot_serve_matches_mutable_serve_report() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let batch = w.batch_at(2.0, 48);
        let snap = n.snapshot();
        let ro = snap.serve_batch(&batch);
        let buffered_before = n.buffered_records();
        let mt = n.serve_batch(2.0, &batch);
        // Identical report; only the mutable path buffered the traffic.
        assert_eq!(ro, mt);
        assert_eq!(n.buffered_records(), buffered_before + batch.len());
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 96));
        let snap = n.snapshot();
        let checksum_before = snap.checksum();
        let probe = w.batch_at(1.0, 16);
        let before: Vec<f64> = probe.iter().map(|s| snap.predict(s)).collect();
        // Train the node hard; the captured snapshot must not move.
        for _ in 0..10 {
            n.online_update_round(1.0, 64);
        }
        let after: Vec<f64> = probe.iter().map(|s| snap.predict(s)).collect();
        assert_eq!(before, after, "a captured snapshot is frozen");
        assert_eq!(snap.checksum(), checksum_before);
        assert!(snap.verify_checksum());
        // And the node itself did move on.
        assert_ne!(n.snapshot().checksum(), checksum_before);
    }

    #[test]
    fn checksum_is_sensitive_to_model_and_steps() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        let a = n.snapshot();
        n.online_update_round(1.0, 32);
        let b = n.snapshot();
        assert_ne!(a.checksum(), b.checksum(), "training must change the checksum");
        // Same state captured twice hashes identically.
        assert_eq!(b.checksum(), n.snapshot().checksum());
        assert_eq!(model_checksum(a.serving_model(), 0), a.checksum());
    }

    #[test]
    fn evaluate_matches_node_evaluate() {
        let (mut n, mut w) = node_and_workload();
        n.serve_batch(0.0, &w.batch_at(0.0, 64));
        n.online_update_round(1.0, 32);
        let batch = w.batch_at(3.0, 64);
        assert_eq!(n.snapshot().evaluate(&batch), n.evaluate(&batch));
    }
}
