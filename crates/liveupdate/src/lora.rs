//! LoRA tables: the compact `ΔW = A·B` representation of embedding updates.
//!
//! For an embedding table `W ∈ R^{|V|×d}`, LiveUpdate keeps a sparse left factor `A`
//! (one `1×k` row per *active* index) and a dense right factor `B ∈ R^{k×d}` (paper
//! Eq. 3). The effective embedding served for a hot index `i` is `W_base[i] + A[i]·B`.
//! Only the rows of `A` for indices that actually received updates are materialised,
//! which is what makes the usage-based pruning of §IV-C effective.

use liveupdate_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sparse-row LoRA adapter for one embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraTable {
    /// Number of rows of the underlying embedding table `|V|`.
    num_rows: usize,
    /// Embedding dimension `d`.
    dim: usize,
    /// Current rank `k`.
    rank: usize,
    /// Active rows of `A`: index → `1×k` row.
    a_rows: BTreeMap<usize, Vec<f64>>,
    /// Dense right factor `B`, row-major `k×d`.
    b: Vec<f64>,
    /// Per-row Adagrad accumulator for the `A` rows (mean squared gradient).
    a_adagrad: BTreeMap<usize, f64>,
    /// Adagrad accumulator for the shared `B` factor.
    b_adagrad: f64,
}

impl LoraTable {
    /// Create an adapter of rank `rank` for a table of `num_rows × dim`. `A` starts empty
    /// (no active rows, so `ΔW = 0`); `B` is initialised with small random values so that
    /// newly activated rows receive a useful gradient signal immediately.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(num_rows: usize, dim: usize, rank: usize, seed: u64) -> Self {
        assert!(num_rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(rank > 0, "rank must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (dim as f64).sqrt();
        let b = (0..rank * dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            num_rows,
            dim,
            rank,
            a_rows: BTreeMap::new(),
            b,
            a_adagrad: BTreeMap::new(),
            b_adagrad: 0.0,
        }
    }

    /// Number of rows of the underlying embedding table.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Embedding dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current LoRA rank `k`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of active (materialised) rows of `A`.
    #[must_use]
    pub fn active_rows(&self) -> usize {
        self.a_rows.len()
    }

    /// The active indices in ascending order.
    #[must_use]
    pub fn active_indices(&self) -> Vec<usize> {
        self.a_rows.keys().copied().collect()
    }

    /// Whether index `i` has an active `A` row.
    #[must_use]
    pub fn is_active(&self, index: usize) -> bool {
        self.a_rows.contains_key(&index)
    }

    /// Borrow the `A` row of an index, if active.
    #[must_use]
    pub fn a_row(&self, index: usize) -> Option<&[f64]> {
        self.a_rows.get(&index).map(Vec::as_slice)
    }

    /// The `A` row of an index as an owned vector: the active row, or zeros at the
    /// current rank. This is the canonical export format of the cross-node sync (every
    /// [`crate::sync::LoraPeer`] implementation must ship exactly this).
    #[must_use]
    pub fn a_row_or_zeros(&self, index: usize) -> Vec<f64> {
        self.a_rows
            .get(&index)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.rank])
    }

    /// Borrow the dense `B` factor as a `k×d` row-major slice.
    #[must_use]
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// The delta `A[i]·B` for an index (zero vector when the index is inactive).
    #[must_use]
    pub fn delta_row(&self, index: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if let Some(a) = self.a_rows.get(&index) {
            for (k, &coeff) in a.iter().enumerate() {
                if coeff == 0.0 {
                    continue;
                }
                let b_row = &self.b[k * self.dim..(k + 1) * self.dim];
                for (o, &bv) in out.iter_mut().zip(b_row) {
                    *o += coeff * bv;
                }
            }
        }
        out
    }

    /// `base + A[i]·B`, the embedding actually served for a hot index.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != dim`.
    #[must_use]
    pub fn effective_row(&self, index: usize, base: &[f64]) -> Vec<f64> {
        assert_eq!(base.len(), self.dim, "base row dimension mismatch");
        let mut out = self.delta_row(index);
        for (o, &b) in out.iter_mut().zip(base) {
            *o += b;
        }
        out
    }

    /// Apply one optimisation step on the factors for a single index given the gradient of
    /// the loss with respect to the *effective* embedding row (`g = ∂L/∂W_eff[i]`, length
    /// `d`): `A[i] -= η_A · g·Bᵀ` and `B -= η_B · A_old[i]ᵀ·g`, where `η_A`/`η_B` are
    /// row-wise-Adagrad-normalised step sizes (the same optimiser family production EMTs
    /// use, so the LoRA factors keep pace with the training cluster regardless of how the
    /// batch-averaged gradient is scaled). Activates the row if necessary.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length does not match `dim` or the index is out of bounds.
    pub fn apply_row_gradient(&mut self, index: usize, grad: &[f64], learning_rate: f64) {
        assert_eq!(grad.len(), self.dim, "gradient dimension mismatch");
        assert!(
            index < self.num_rows,
            "index {index} out of bounds ({})",
            self.num_rows
        );
        const EPS: f64 = 1e-8;
        let sq_mean: f64 = grad.iter().map(|g| g * g).sum::<f64>() / self.dim as f64;
        let a_old = self
            .a_rows
            .entry(index)
            .or_insert_with(|| vec![0.0; self.rank])
            .clone();
        let a_acc = self.a_adagrad.entry(index).or_insert(0.0);
        *a_acc += sq_mean;
        let lr_a = learning_rate / (a_acc.sqrt() + EPS);
        self.b_adagrad += sq_mean;
        let lr_b = learning_rate / (self.b_adagrad.sqrt() + EPS);
        // dL/dA[i] = g · Bᵀ  (1×d · d×k = 1×k)
        let mut grad_a = vec![0.0; self.rank];
        for (k, ga) in grad_a.iter_mut().enumerate() {
            let b_row = &self.b[k * self.dim..(k + 1) * self.dim];
            *ga = grad.iter().zip(b_row).map(|(g, b)| g * b).sum();
        }
        // dL/dB = A_old[i]ᵀ · g  (k×1 · 1×d = k×d)
        for (k, &coeff) in a_old.iter().enumerate().take(self.rank) {
            if coeff == 0.0 {
                continue;
            }
            let b_row = &mut self.b[k * self.dim..(k + 1) * self.dim];
            for (b, &g) in b_row.iter_mut().zip(grad) {
                *b -= lr_b * coeff * g;
            }
        }
        let a_row = self.a_rows.get_mut(&index).expect("row was just inserted");
        for (a, &ga) in a_row.iter_mut().zip(&grad_a) {
            *a -= lr_a * ga;
        }
    }

    /// Overwrite the `A` row of an index (used by cross-node synchronisation).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the current rank or the index is out of
    /// bounds.
    pub fn set_a_row(&mut self, index: usize, row: Vec<f64>) {
        assert_eq!(row.len(), self.rank, "A row length must equal the rank");
        assert!(
            index < self.num_rows,
            "index {index} out of bounds ({})",
            self.num_rows
        );
        self.a_rows.insert(index, row);
    }

    /// Overwrite the leading rows of the dense `B` factor with a factor broadcast from a
    /// peer adapter of `source_rank` rows (cross-node synchronisation). Only the leading
    /// `min(rank, source_rank)` rows are copied, so adapters at different adapted ranks
    /// stay shape-consistent; the local rank never changes.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != source_rank * dim`.
    pub fn import_b(&mut self, b: &[f64], source_rank: usize) {
        assert_eq!(b.len(), source_rank * self.dim, "B factor shape mismatch");
        let rows = self.rank.min(source_rank);
        self.b[..rows * self.dim].copy_from_slice(&b[..rows * self.dim]);
    }

    /// Resize the rank to `new_rank`, truncating or zero-padding every active `A` row and
    /// the `B` factor. Information in the leading `min(old, new)` components is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `new_rank == 0`.
    pub fn resize_rank(&mut self, new_rank: usize) {
        assert!(new_rank > 0, "rank must be at least 1");
        if new_rank == self.rank {
            return;
        }
        let old_rank = self.rank;
        for row in self.a_rows.values_mut() {
            row.resize(new_rank, 0.0);
        }
        let mut new_b = vec![0.0; new_rank * self.dim];
        for k in 0..new_rank.min(old_rank) {
            new_b[k * self.dim..(k + 1) * self.dim]
                .copy_from_slice(&self.b[k * self.dim..(k + 1) * self.dim]);
        }
        // Newly added B rows get small deterministic values so they can start learning.
        if new_rank > old_rank {
            let mut rng = StdRng::seed_from_u64(new_rank as u64 * 7919 + self.dim as u64);
            let bound = 1.0 / (self.dim as f64).sqrt();
            for v in new_b.iter_mut().skip(old_rank * self.dim) {
                *v = rng.gen_range(-bound..bound);
            }
        }
        self.b = new_b;
        self.rank = new_rank;
    }

    /// Remove the `A` rows of every index not in `keep`, returning how many were pruned.
    pub fn prune_to(&mut self, keep: &[usize]) -> usize {
        let keep_set: std::collections::BTreeSet<usize> = keep.iter().copied().collect();
        let before = self.a_rows.len();
        self.a_rows.retain(|idx, _| keep_set.contains(idx));
        self.a_adagrad.retain(|idx, _| keep_set.contains(idx));
        before - self.a_rows.len()
    }

    /// Drop every active row (e.g. after a full-parameter synchronisation absorbs the
    /// accumulated deltas into the base table).
    pub fn clear(&mut self) {
        self.a_rows.clear();
        self.a_adagrad.clear();
        self.b_adagrad = 0.0;
    }

    /// Merge the accumulated deltas into `base` (adds `A[i]·B` to each active row) and
    /// clear the adapter. This is the mid-term "absorb into the base model" step of the
    /// tiered update timeline (paper Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the base table shape does not match.
    pub fn merge_into(&mut self, base: &mut liveupdate_dlrm::EmbeddingTable) {
        assert_eq!(
            base.num_rows(),
            self.num_rows,
            "row count mismatch in merge_into"
        );
        assert_eq!(base.dim(), self.dim, "dimension mismatch in merge_into");
        let indices = self.active_indices();
        for idx in indices {
            let delta = self.delta_row(idx);
            base.add_to_row(idx, &delta);
        }
        self.clear();
    }

    /// Bytes needed to store the adapter (`f64` storage: active `A` rows plus dense `B`).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        (self.a_rows.len() * self.rank + self.rank * self.dim) * std::mem::size_of::<f64>()
    }

    /// Memory of the adapter relative to the dense `|V|×d` table it shadows.
    #[must_use]
    pub fn memory_fraction_of_base(&self) -> f64 {
        let base = (self.num_rows * self.dim * std::mem::size_of::<f64>()) as f64;
        if base == 0.0 {
            return 0.0;
        }
        self.memory_bytes() as f64 / base
    }

    /// The dense `ΔW` this adapter represents (active rows only, all other rows zero);
    /// mainly useful for tests and analysis.
    #[must_use]
    pub fn to_dense_delta(&self) -> Matrix {
        let mut m = Matrix::zeros(self.num_rows, self.dim);
        for &idx in self.a_rows.keys() {
            let delta = self.delta_row(idx);
            m.row_mut(idx).copy_from_slice(&delta);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_dlrm::EmbeddingTable;
    use proptest::prelude::*;

    fn table() -> LoraTable {
        LoraTable::new(100, 8, 4, 42)
    }

    #[test]
    #[should_panic(expected = "rank must be at least 1")]
    fn zero_rank_rejected() {
        let _ = LoraTable::new(10, 8, 0, 0);
    }

    #[test]
    fn new_table_is_identity_delta() {
        let t = table();
        assert_eq!(t.rank(), 4);
        assert_eq!(t.active_rows(), 0);
        assert_eq!(t.delta_row(5), vec![0.0; 8]);
        assert_eq!(t.memory_bytes(), 4 * 8 * 8); // only B
        let base = vec![1.0; 8];
        assert_eq!(t.effective_row(5, &base), base);
        assert!(!t.is_active(5));
    }

    #[test]
    fn gradient_step_activates_row_and_reduces_loss() {
        let mut t = table();
        let base = vec![0.0; 8];
        let target: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        // Minimise 0.5‖eff − target‖² by gradient descent on the factors.
        let loss = |t: &LoraTable| -> f64 {
            t.effective_row(3, &base)
                .iter()
                .zip(&target)
                .map(|(e, t)| 0.5 * (e - t) * (e - t))
                .sum()
        };
        let initial = loss(&t);
        for _ in 0..300 {
            let eff = t.effective_row(3, &base);
            let grad: Vec<f64> = eff.iter().zip(&target).map(|(e, t)| e - t).collect();
            t.apply_row_gradient(3, &grad, 0.1);
        }
        let final_loss = loss(&t);
        assert!(t.is_active(3));
        assert_eq!(t.active_rows(), 1);
        assert!(
            final_loss < initial * 0.05,
            "loss {initial} -> {final_loss}"
        );
    }

    #[test]
    fn delta_row_matches_explicit_product() {
        let mut t = LoraTable::new(10, 4, 2, 1);
        t.set_a_row(2, vec![1.0, -0.5]);
        let b = t.b().to_vec();
        let expected: Vec<f64> = (0..4).map(|j| 1.0 * b[j] - 0.5 * b[4 + j]).collect();
        let delta = t.delta_row(2);
        for (d, e) in delta.iter().zip(&expected) {
            assert!((d - e).abs() < 1e-12);
        }
    }

    #[test]
    fn resize_rank_preserves_leading_components() {
        let mut t = LoraTable::new(20, 4, 3, 5);
        t.set_a_row(7, vec![0.5, -1.0, 2.0]);
        let before = t.delta_row(7);
        // Growing the rank must not change the represented delta (new coefficients are 0).
        t.resize_rank(6);
        assert_eq!(t.rank(), 6);
        let after_grow = t.delta_row(7);
        for (a, b) in before.iter().zip(&after_grow) {
            assert!((a - b).abs() < 1e-12);
        }
        // Shrinking keeps only the leading components.
        t.resize_rank(1);
        assert_eq!(t.rank(), 1);
        assert_eq!(t.a_row(7).unwrap().len(), 1);
        // Same-rank resize is a no-op.
        let snapshot = t.clone();
        t.resize_rank(1);
        assert_eq!(t, snapshot);
    }

    #[test]
    fn prune_keeps_only_requested_rows() {
        let mut t = table();
        for idx in [1, 2, 3, 4, 5] {
            t.apply_row_gradient(idx, &[0.1; 8], 0.1);
        }
        assert_eq!(t.active_rows(), 5);
        let pruned = t.prune_to(&[2, 4]);
        assert_eq!(pruned, 3);
        assert_eq!(t.active_indices(), vec![2, 4]);
        t.clear();
        assert_eq!(t.active_rows(), 0);
    }

    #[test]
    fn merge_into_applies_delta_and_clears() {
        let mut t = LoraTable::new(10, 4, 2, 3);
        t.set_a_row(6, vec![1.0, 1.0]);
        let delta = t.delta_row(6);
        let mut base = EmbeddingTable::zeros(10, 4);
        t.merge_into(&mut base);
        for (b, d) in base.row(6).iter().zip(&delta) {
            assert!((b - d).abs() < 1e-12);
        }
        assert_eq!(t.active_rows(), 0);
        // Untouched rows remain zero.
        assert_eq!(base.row(0), &[0.0; 4]);
    }

    #[test]
    fn memory_accounting_scales_with_active_rows_and_rank() {
        let mut t = LoraTable::new(1000, 16, 4, 0);
        let b_only = t.memory_bytes();
        assert_eq!(b_only, 4 * 16 * 8);
        for idx in 0..100 {
            t.set_a_row(idx, vec![0.0; 4]);
        }
        assert_eq!(t.memory_bytes(), b_only + 100 * 4 * 8);
        // 100 active rows of rank 4 over a 1000×16 base ⇒ well under 10 %.
        assert!(t.memory_fraction_of_base() < 0.1);
    }

    #[test]
    fn to_dense_delta_shape_and_content() {
        let mut t = LoraTable::new(5, 3, 2, 9);
        t.set_a_row(1, vec![1.0, 0.0]);
        let m = t.to_dense_delta();
        assert_eq!(m.shape(), (5, 3));
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        let expected = t.delta_row(1);
        for (a, b) in m.row(1).iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_effective_row_equals_base_plus_delta(
            idx in 0usize..50,
            seed in 0u64..100,
            grad in proptest::collection::vec(-1.0f64..1.0, 8),
        ) {
            let mut t = LoraTable::new(50, 8, 3, seed);
            t.apply_row_gradient(idx, &grad, 0.05);
            let base: Vec<f64> = (0..8).map(|i| i as f64).collect();
            let eff = t.effective_row(idx, &base);
            let delta = t.delta_row(idx);
            for j in 0..8 {
                prop_assert!((eff[j] - (base[j] + delta[j])).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_memory_fraction_below_one_for_sparse_activation(
            active in 1usize..50,
            rank in 1usize..8,
        ) {
            let mut t = LoraTable::new(2000, 16, rank, 1);
            for idx in 0..active {
                t.set_a_row(idx, vec![0.0; rank]);
            }
            prop_assert!(t.memory_fraction_of_base() < 1.0);
        }
    }
}
