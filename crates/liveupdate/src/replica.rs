//! One serving replica of a multi-replica cluster.
//!
//! A [`Replica`] wraps a [`ServingNode`] with its cluster rank and the bookkeeping the
//! sparse synchronisation protocol needs: every online update round's touched rows are
//! recorded into the shared [`SparseLoraSync`] under this replica's rank, so the next
//! priority merge knows exactly which `(table, row)` indices this node changed.

use crate::engine::{ServeReport, ServingNode, UpdateRoundReport};
use crate::sync::{LoraPeer, SparseLoraSync};
use liveupdate_dlrm::sample::MiniBatch;

/// A [`ServingNode`] participating in a cluster under a fixed rank.
#[derive(Debug, Clone)]
pub struct Replica {
    rank: usize,
    node: ServingNode,
    requests_served: u64,
    update_rounds: u64,
    rows_recorded: u64,
}

impl Replica {
    /// Wrap `node` as cluster rank `rank`.
    #[must_use]
    pub fn new(rank: usize, node: ServingNode) -> Self {
        Self {
            rank,
            node,
            requests_served: 0,
            update_rounds: 0,
            rows_recorded: 0,
        }
    }

    /// This replica's cluster rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The wrapped serving node.
    #[must_use]
    pub fn node(&self) -> &ServingNode {
        &self.node
    }

    /// Mutable access to the wrapped serving node.
    pub fn node_mut(&mut self) -> &mut ServingNode {
        &mut self.node
    }

    /// Total requests this replica has served.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Total online update rounds this replica has run.
    #[must_use]
    pub fn update_rounds(&self) -> u64 {
        self.update_rounds
    }

    /// Total `(table, row)` updates recorded into the sync protocol.
    #[must_use]
    pub fn rows_recorded(&self) -> u64 {
        self.rows_recorded
    }

    /// Serve this replica's shard of a traffic window.
    pub fn serve(&mut self, time_minutes: f64, shard: &MiniBatch) -> ServeReport {
        self.requests_served += shard.len() as u64;
        self.node.serve_batch(time_minutes, shard)
    }

    /// Run one online update round and record the touched rows into `sync` under this
    /// replica's rank (Algorithm 3 line 7).
    pub fn update_round(
        &mut self,
        time_minutes: f64,
        batch_size: usize,
        sync: &mut SparseLoraSync,
    ) -> UpdateRoundReport {
        let report = self.node.online_update_round(time_minutes, batch_size);
        for &(table, row) in &report.touched_rows {
            sync.record_update(self.rank, table, row);
        }
        self.rows_recorded += report.touched_rows.len() as u64;
        self.update_rounds += 1;
        report
    }
}

/// Synchronisation reaches through the replica to its node.
impl LoraPeer for Replica {
    fn lora_rank(&self, table: usize) -> usize {
        self.node.lora_rank(table)
    }

    fn export_a_row(&self, table: usize, row: usize) -> Vec<f64> {
        self.node.export_a_row(table, row)
    }

    fn import_a_row(&mut self, table: usize, row: usize, values: Vec<f64>) {
        self.node.import_a_row(table, row, values);
    }

    fn export_b(&self, table: usize) -> Vec<f64> {
        self.node.export_b(table)
    }

    fn import_b(&mut self, table: usize, b: &[f64], source_rank: usize) {
        self.node.import_b(table, b, source_rank);
    }

    fn finish_sync(&mut self) {
        self.node.finish_sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiveUpdateConfig;
    use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn replica(rank: usize) -> Replica {
        let model = DlrmModel::new(
            DlrmConfig {
                table_sizes: vec![300, 300],
                ..DlrmConfig::tiny(2, 300, 8)
            },
            11,
        );
        Replica::new(rank, ServingNode::new(model, LiveUpdateConfig::default()))
    }

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 300,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn replica_records_touched_rows_under_its_rank() {
        let mut r = replica(2);
        let mut sync = SparseLoraSync::new(3, 8);
        let mut w = workload();
        r.serve(0.0, &w.batch_at(0.0, 64));
        assert_eq!(r.requests_served(), 64);
        let report = r.update_round(1.0, 32, &mut sync);
        assert!(report.rows_updated > 0);
        assert_eq!(r.update_rounds(), 1);
        assert_eq!(r.rows_recorded(), report.touched_rows.len() as u64);
        // All updates were recorded under rank 2, none under the other ranks.
        assert_eq!(sync.pending(2), report.touched_rows.len());
        assert_eq!(sync.pending(0), 0);
        assert_eq!(sync.pending(1), 0);
    }

    #[test]
    fn empty_round_records_nothing() {
        let mut r = replica(0);
        let mut sync = SparseLoraSync::new(1, 8);
        let report = r.update_round(0.0, 32, &mut sync);
        assert_eq!(report.rows_updated, 0);
        assert_eq!(sync.pending(0), 0);
        assert_eq!(r.rows_recorded(), 0);
    }
}
