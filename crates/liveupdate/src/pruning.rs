//! Usage-based LoRA-table pruning (paper §IV-C, Algorithm 1 lines 5–10).
//!
//! Most embedding indices are updated rarely; keeping an `A` row for each of them wastes
//! memory. [`UsagePruner`] tracks how often every index is updated over a sliding window of
//! training steps, declares indices updated at least `τ_prune` times *active*, and clamps
//! the resulting LoRA-table size to `[C_min, C_max]`:
//!
//! ```text
//! C_{t+1} = min( max(|I_active|, C_min), C_max )
//! ```
//!
//! `τ_prune` is initialised from the access skew (the access frequency of the rank-10 %
//! index, Fig. 12) and can be re-estimated from a live access histogram.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Result of one pruning decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneDecision {
    /// Indices that remain active (should keep their LoRA `A` rows).
    pub active_indices: Vec<usize>,
    /// The clamped LoRA-table size for the next interval.
    pub table_size: usize,
    /// Number of indices that were tracked but fell below the threshold.
    pub pruned: usize,
}

/// Sliding-window update-frequency tracker and pruning policy for one embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsagePruner {
    window_steps: usize,
    prune_threshold: u64,
    min_size: usize,
    max_size: usize,
    /// Update counts per index within the current window.
    counts: BTreeMap<usize, u64>,
    /// Per-step records of which indices were updated, to expire them from the window.
    history: VecDeque<Vec<usize>>,
    steps_observed: u64,
}

impl UsagePruner {
    /// Create a pruner.
    ///
    /// `min_size`/`max_size` are the `C_min`/`C_max` clamp; `prune_threshold` is `τ_prune`
    /// (minimum updates within the window for an index to stay active).
    ///
    /// # Panics
    ///
    /// Panics if `window_steps == 0`, `min_size > max_size`, or `max_size == 0`.
    #[must_use]
    pub fn new(
        window_steps: usize,
        prune_threshold: u64,
        min_size: usize,
        max_size: usize,
    ) -> Self {
        assert!(window_steps > 0, "window must cover at least one step");
        assert!(max_size > 0, "max size must be positive");
        assert!(min_size <= max_size, "min size must not exceed max size");
        Self {
            window_steps,
            prune_threshold,
            min_size,
            max_size,
            counts: BTreeMap::new(),
            history: VecDeque::new(),
            steps_observed: 0,
        }
    }

    /// Build a pruner from the paper's defaults: window `T`, threshold from the top
    /// `hot_fraction` of a Zipf-like access pattern (≥1), and a size clamp derived from the
    /// full table size and the configured fractions.
    #[must_use]
    pub fn from_table(
        table_rows: usize,
        window_steps: usize,
        min_fraction: f64,
        max_fraction: f64,
        prune_threshold: u64,
    ) -> Self {
        let min_size = ((table_rows as f64 * min_fraction).ceil() as usize).max(1);
        let max_size = ((table_rows as f64 * max_fraction).ceil() as usize).max(min_size);
        Self::new(window_steps, prune_threshold.max(1), min_size, max_size)
    }

    /// The pruning threshold `τ_prune`.
    #[must_use]
    pub fn prune_threshold(&self) -> u64 {
        self.prune_threshold
    }

    /// Update `τ_prune` (e.g. re-estimated from an access histogram to keep tracking the
    /// top-10 % boundary during serving).
    pub fn set_prune_threshold(&mut self, threshold: u64) {
        self.prune_threshold = threshold.max(1);
    }

    /// Number of distinct indices currently tracked in the window.
    #[must_use]
    pub fn tracked_indices(&self) -> usize {
        self.counts.len()
    }

    /// Number of training steps observed so far.
    #[must_use]
    pub fn steps_observed(&self) -> u64 {
        self.steps_observed
    }

    /// Record the indices updated by one training step and slide the window.
    pub fn record_step<I: IntoIterator<Item = usize>>(&mut self, updated: I) {
        let updated: Vec<usize> = updated.into_iter().collect();
        for &idx in &updated {
            *self.counts.entry(idx).or_insert(0) += 1;
        }
        self.history.push_back(updated);
        self.steps_observed += 1;
        while self.history.len() > self.window_steps {
            if let Some(expired) = self.history.pop_front() {
                for idx in expired {
                    if let Some(c) = self.counts.get_mut(&idx) {
                        *c -= 1;
                        if *c == 0 {
                            self.counts.remove(&idx);
                        }
                    }
                }
            }
        }
    }

    /// Update frequency of an index within the current window.
    #[must_use]
    pub fn frequency(&self, index: usize) -> u64 {
        self.counts.get(&index).copied().unwrap_or(0)
    }

    /// Make a pruning decision: indices with `frequency >= τ_prune` stay active; the table
    /// size is `|I_active|` clamped to `[C_min, C_max]`. If the clamp allows more rows than
    /// there are active indices, the most frequently updated sub-threshold indices fill the
    /// remaining space (so `C_min` is honoured with the best candidates available).
    #[must_use]
    pub fn decide(&self) -> PruneDecision {
        let mut active: Vec<usize> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= self.prune_threshold)
            .map(|(&i, _)| i)
            .collect();
        let below: Vec<(usize, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c < self.prune_threshold)
            .map(|(&i, &c)| (i, c))
            .collect();
        let pruned = below.len();
        let table_size = active.len().clamp(self.min_size, self.max_size);
        if active.len() > table_size {
            // Too many active indices for C_max: keep the most frequently updated ones.
            active.sort_by_key(|&i| std::cmp::Reverse(self.frequency(i)));
            active.truncate(table_size);
            active.sort_unstable();
        } else if active.len() < table_size {
            // Fill up to C_min with the best sub-threshold candidates.
            let mut fill = below;
            fill.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            for (idx, _) in fill {
                if active.len() >= table_size {
                    break;
                }
                if !active.contains(&idx) {
                    active.push(idx);
                }
            }
            active.sort_unstable();
        }
        PruneDecision {
            table_size,
            pruned,
            active_indices: active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "window must cover at least one step")]
    fn zero_window_rejected() {
        let _ = UsagePruner::new(0, 1, 1, 10);
    }

    #[test]
    #[should_panic(expected = "min size must not exceed max size")]
    fn bad_clamp_rejected() {
        let _ = UsagePruner::new(10, 1, 20, 10);
    }

    #[test]
    fn frequencies_tracked_within_window() {
        let mut p = UsagePruner::new(3, 2, 1, 100);
        p.record_step(vec![1, 2]);
        p.record_step(vec![1]);
        p.record_step(vec![1, 3]);
        assert_eq!(p.frequency(1), 3);
        assert_eq!(p.frequency(2), 1);
        assert_eq!(p.frequency(9), 0);
        assert_eq!(p.tracked_indices(), 3);
        assert_eq!(p.steps_observed(), 3);
        // Window slides: the first step (with index 2) expires.
        p.record_step(vec![4]);
        assert_eq!(p.frequency(2), 0);
        assert_eq!(p.frequency(1), 2);
    }

    #[test]
    fn decision_keeps_hot_indices_and_prunes_cold_ones() {
        let mut p = UsagePruner::new(100, 3, 1, 100);
        for _ in 0..5 {
            p.record_step(vec![10, 20]);
        }
        p.record_step(vec![30]);
        let d = p.decide();
        assert!(d.active_indices.contains(&10));
        assert!(d.active_indices.contains(&20));
        // Index 30 (1 update < τ=3) is pruned but may be used as C_min filler only if needed.
        assert_eq!(d.pruned, 1);
        assert_eq!(d.table_size, 2);
        assert_eq!(d.active_indices.len(), 2);
    }

    #[test]
    fn min_size_filled_with_best_candidates() {
        let mut p = UsagePruner::new(100, 5, 4, 100);
        p.record_step(vec![1, 1, 2]); // duplicates count twice for index 1
        p.record_step(vec![2, 3]);
        p.record_step(vec![4]);
        // Nothing reaches τ=5, but C_min=4 forces the four best candidates to stay.
        let d = p.decide();
        assert_eq!(d.table_size, 4);
        assert_eq!(d.active_indices.len(), 4);
        assert!(d.active_indices.contains(&1));
        assert!(d.active_indices.contains(&2));
    }

    #[test]
    fn max_size_truncates_to_hottest() {
        let mut p = UsagePruner::new(100, 1, 1, 3);
        for step in 0..10 {
            // Index 0 updated every step, 1 every 2nd, 2 every 3rd, …
            let updated: Vec<usize> = (0..6).filter(|i| step % (i + 1) == 0).collect();
            p.record_step(updated);
        }
        let d = p.decide();
        assert_eq!(d.table_size, 3);
        assert_eq!(d.active_indices, vec![0, 1, 2]);
    }

    #[test]
    fn from_table_applies_fractions() {
        let p = UsagePruner::from_table(1000, 256, 0.02, 1.0, 0);
        assert_eq!(p.prune_threshold(), 1); // clamped to at least 1
        let d = p.decide();
        assert_eq!(d.table_size, 20); // C_min = 2 % of 1000
        assert!(d.active_indices.is_empty());
    }

    #[test]
    fn threshold_can_be_retuned() {
        let mut p = UsagePruner::new(10, 5, 1, 10);
        p.set_prune_threshold(0);
        assert_eq!(p.prune_threshold(), 1);
        p.set_prune_threshold(7);
        assert_eq!(p.prune_threshold(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_table_size_within_clamp(
            steps in proptest::collection::vec(proptest::collection::vec(0usize..50, 0..10), 1..30),
            threshold in 1u64..5,
            min_size in 1usize..10,
            extra in 0usize..40,
        ) {
            let max_size = min_size + extra;
            let mut p = UsagePruner::new(16, threshold, min_size, max_size);
            for s in steps {
                p.record_step(s);
            }
            let d = p.decide();
            prop_assert!(d.table_size >= min_size);
            prop_assert!(d.table_size <= max_size);
            prop_assert!(d.active_indices.len() <= d.table_size.max(min_size));
        }

        #[test]
        fn prop_active_indices_sorted_and_unique(
            steps in proptest::collection::vec(proptest::collection::vec(0usize..30, 0..8), 1..20),
        ) {
            let mut p = UsagePruner::new(8, 2, 1, 100);
            for s in steps {
                p.record_step(s);
            }
            let d = p.decide();
            for w in d.active_indices.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
