//! # LiveUpdate — inference-side model updates for recommendation serving
//!
//! This crate is the core of the reproduction of *Near-Zero-Overhead Freshness for
//! Recommendation Systems via Inference-Side Model Updates* (HPCA 2026). Production DLRMs
//! keep training and inference on separate clusters and ship multi-terabyte embedding-table
//! updates between them; LiveUpdate instead co-locates a lightweight Low-Rank Adaptation
//! (LoRA) trainer on the inference nodes, so freshness no longer requires inter-cluster
//! synchronisation.
//!
//! The crate is organised around the paper's design (Fig. 7):
//!
//! * [`lora`] — the LoRA tables `ΔW = A·B` layered on top of the frozen base embeddings.
//! * [`rank_adapt`] — variance-aware dynamic rank adaptation via PCA (Algorithm 1, part 1).
//! * [`pruning`] — usage-based LoRA-table pruning (Algorithm 1, part 2).
//! * [`hot_index`] — the hot-index filter deciding which lookups need the LoRA correction.
//! * [`trainer`] — the in-node LoRA trainer (base weights frozen, only `A`/`B` learn).
//! * [`scheduler`] — adaptive NUMA/CCD partitioning driven by P99 latency (Algorithm 2).
//! * [`isolation`] — the cache/bandwidth contention experiments behind Figs. 11 and 16.
//! * [`sync`] — sparse data-parallel LoRA synchronisation with priority merge (Algorithm 3),
//!   expressed over the [`sync::LoraPeer`] trait so it applies to live serving nodes.
//! * [`engine`] — the per-node serving engine combining the inference path and the online
//!   update path.
//! * [`snapshot`] — immutable, checksummed serving snapshots: the read-only serve API the
//!   real multithreaded runtime (`liveupdate_runtime`) publishes via atomic epoch swaps.
//! * [`replica`] — one serving node under a cluster rank, recording its touched rows into
//!   the shared sync protocol.
//! * [`cluster`] — the event-driven multi-replica serving cluster: deterministic request
//!   routing, per-replica online training, and periodic sparse synchronisation priced
//!   against the modelled fabric (Fig. 19).
//! * [`strategy`] — NoUpdate / DeltaUpdate / QuickUpdate / LiveUpdate update strategies and
//!   their analytic cost models.
//! * [`error`] — the typed [`ConfigError`] every configuration type in the workspace
//!   (experiment, cluster, runtime, scenario) validates into.
//! * [`experiment`] — end-to-end freshness experiments (accuracy over time, update cost,
//!   scalability) used by the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use liveupdate::config::LiveUpdateConfig;
//! use liveupdate::engine::ServingNode;
//! use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
//! use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};
//!
//! // A small model and workload.
//! let model = DlrmModel::new(DlrmConfig::tiny(2, 200, 8), 7);
//! let mut workload = SyntheticWorkload::new(WorkloadConfig {
//!     num_tables: 2,
//!     table_size: 200,
//!     ..WorkloadConfig::default()
//! });
//!
//! // A serving node with LiveUpdate enabled.
//! let mut node = ServingNode::new(model, LiveUpdateConfig::default());
//!
//! // Serve a 5-minute window and run one online update round.
//! let batch = workload.batch_at(0.0, 64);
//! node.serve_batch(0.0, &batch);
//! let report = node.online_update_round(5.0, 32);
//! assert!(report.rows_updated > 0);
//! ```
//!
//! # Cluster quickstart
//!
//! Scaling out is one constructor away: a [`cluster::ServingCluster`] shards the stream
//! over `N` replicas and keeps their adapters consistent with sparse LoRA syncs.
//!
//! ```
//! use liveupdate::cluster::{ClusterConfig, ServingCluster};
//!
//! let mut cfg = ClusterConfig::small(2); // 2 replicas, hash-by-user routing
//! cfg.experiment.duration_minutes = 20.0; // 2 ten-minute windows
//! cfg.experiment.online_rounds_per_window = 2;
//!
//! let summary = ServingCluster::new(cfg).run();
//! assert_eq!(summary.num_replicas, 2);
//! assert_eq!(summary.timeline.len(), 2);
//! assert_eq!(summary.ledger.syncs, 2); // one sparse sync per window
//! assert!(summary.sync_reports[0].indices_exchanged > 0);
//! ```

pub mod cluster;
pub mod config;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod hot_index;
pub mod isolation;
pub mod lora;
pub mod pruning;
pub mod rank_adapt;
pub mod replica;
pub mod scheduler;
pub mod snapshot;
pub mod strategy;
pub mod sync;
pub mod trainer;

pub use cluster::{ClusterConfig, ClusterRunSummary, ServingCluster};
pub use config::LiveUpdateConfig;
pub use engine::ServingNode;
pub use error::ConfigError;
pub use lora::LoraTable;
pub use replica::Replica;
pub use snapshot::{HotRowCache, ServingSnapshot};
pub use strategy::StrategyKind;
pub use sync::SparseLoraSync;
