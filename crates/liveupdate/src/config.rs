//! System-wide configuration of a LiveUpdate deployment.

use crate::error::ConfigError;
use liveupdate_dlrm::embedding::StorageKind;
use serde::{Deserialize, Serialize};

/// Tunables of the LiveUpdate serving node, with defaults matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveUpdateConfig {
    /// Variance threshold `α` of the dynamic rank adaptation (paper Eq. 2, default 0.8).
    pub variance_threshold: f64,
    /// Initial LoRA rank before the first adaptation.
    pub initial_rank: usize,
    /// Hard bounds on the adapted rank (protects against degenerate snapshots).
    pub min_rank: usize,
    /// Upper bound on the adapted rank.
    pub max_rank: usize,
    /// How many training iterations between rank/pruning adaptations (paper: every `T`,
    /// e.g. 128 iterations).
    pub adaptation_interval_steps: usize,
    /// Learning rate of the LoRA trainer.
    pub lora_learning_rate: f64,
    /// Sliding-window length (iterations) over which per-index update frequencies are
    /// tracked for pruning.
    pub pruning_window_steps: usize,
    /// Fraction of the full table used as the minimum LoRA-table size `C_min`
    /// (paper default: 1/50).
    pub min_table_fraction: f64,
    /// Fraction of the full table used as the maximum LoRA-table size `C_max`.
    pub max_table_fraction: f64,
    /// Fraction of indices treated as "hot" when initialising the pruning threshold
    /// `τ_prune` (paper: top 10 % by access frequency).
    pub hot_fraction: f64,
    /// Retention window of the inference-log buffer in minutes (paper: 10 minutes).
    pub retention_minutes: f64,
    /// Maximum records retained in the inference-log buffer.
    pub retention_max_records: usize,
    /// Interval (training steps) between LoRA AllGather synchronisations across nodes.
    pub sync_interval_steps: usize,
    /// P99 latency above which the CCD scheduler gives a CCD back to inference (ms).
    pub p99_high_threshold_ms: f64,
    /// P99 latency below which the CCD scheduler reclaims a CCD for training (ms).
    pub p99_low_threshold_ms: f64,
    /// Minimum number of CCDs that must stay with inference.
    pub min_inference_ccds: usize,
    /// Maximum number of CCDs training may own.
    pub max_training_ccds: usize,
    /// Row storage of the serving model's embedding tables: `F64` (exact), or `F16`/`I8`
    /// quantized with an f64 master overlay for updater-touched rows. The frozen base
    /// model always stays f64.
    pub serving_storage: StorageKind,
    /// Fraction of each table's most-accessed rows held dequantized in the snapshot's
    /// hot-row cache (`0.0` disables the cache). Keyed by the live Zipf access CDF, so
    /// the head of the distribution serves without touching quantized storage.
    pub hot_cache_fraction: f64,
}

impl Default for LiveUpdateConfig {
    fn default() -> Self {
        Self {
            variance_threshold: 0.8,
            initial_rank: 4,
            min_rank: 1,
            max_rank: 64,
            adaptation_interval_steps: 128,
            lora_learning_rate: 0.05,
            pruning_window_steps: 256,
            min_table_fraction: 1.0 / 50.0,
            max_table_fraction: 1.0,
            hot_fraction: 0.1,
            retention_minutes: 10.0,
            retention_max_records: 100_000,
            sync_interval_steps: 32,
            p99_high_threshold_ms: 10.0,
            p99_low_threshold_ms: 6.0,
            min_inference_ccds: 4,
            max_training_ccds: 4,
            serving_storage: StorageKind::F64,
            hot_cache_fraction: 0.0,
        }
    }
}

impl LiveUpdateConfig {
    /// Validate the configuration; returns the first violated constraint found.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] when any field is out of range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.variance_threshold > 0.0 && self.variance_threshold <= 1.0) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.variance_threshold",
                requirement: "must be in (0, 1]",
            });
        }
        if self.initial_rank == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.initial_rank",
            });
        }
        if self.min_rank == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.min_rank",
            });
        }
        if self.min_rank > self.max_rank {
            return Err(ConfigError::Mismatch {
                left: "liveupdate.min_rank",
                right: "liveupdate.max_rank",
                requirement: "min_rank must not exceed max_rank",
            });
        }
        if self.adaptation_interval_steps == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.adaptation_interval_steps",
            });
        }
        if self.pruning_window_steps == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.pruning_window_steps",
            });
        }
        if !(self.lora_learning_rate > 0.0 && self.lora_learning_rate.is_finite()) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.lora_learning_rate",
                requirement: "must be positive and finite",
            });
        }
        if !(self.min_table_fraction > 0.0 && self.min_table_fraction <= 1.0) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.min_table_fraction",
                requirement: "must be in (0, 1]",
            });
        }
        if !(self.max_table_fraction >= self.min_table_fraction && self.max_table_fraction <= 1.0) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.max_table_fraction",
                requirement: "must be in [min_table_fraction, 1]",
            });
        }
        if !(self.hot_fraction > 0.0 && self.hot_fraction <= 1.0) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.hot_fraction",
                requirement: "must be in (0, 1]",
            });
        }
        if self.retention_minutes <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.retention_minutes",
            });
        }
        if self.retention_max_records == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.retention_max_records",
            });
        }
        if self.sync_interval_steps == 0 {
            return Err(ConfigError::NonPositive {
                field: "liveupdate.sync_interval_steps",
            });
        }
        if !(0.0..=1.0).contains(&self.hot_cache_fraction) {
            return Err(ConfigError::Constraint {
                field: "liveupdate.hot_cache_fraction",
                requirement: "must be in [0, 1]",
            });
        }
        if self.p99_low_threshold_ms >= self.p99_high_threshold_ms {
            return Err(ConfigError::Mismatch {
                left: "liveupdate.p99_low_threshold_ms",
                right: "liveupdate.p99_high_threshold_ms",
                requirement: "the low watermark must be below the high watermark",
            });
        }
        Ok(())
    }

    /// A configuration with a fixed LoRA rank (no dynamic adaptation), used by the
    /// `LiveUpdate-α` ablation rows of Table III.
    #[must_use]
    pub fn with_fixed_rank(rank: usize) -> Self {
        Self {
            initial_rank: rank.max(1),
            min_rank: rank.max(1),
            max_rank: rank.max(1),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = LiveUpdateConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.variance_threshold, 0.8);
        assert_eq!(c.retention_minutes, 10.0);
        assert_eq!(c.p99_high_threshold_ms, 10.0);
        assert_eq!(c.p99_low_threshold_ms, 6.0);
        assert!((c.min_table_fraction - 0.02).abs() < 1e-12);
        assert_eq!(c.hot_fraction, 0.1);
    }

    #[test]
    fn fixed_rank_config_pins_rank() {
        let c = LiveUpdateConfig::with_fixed_rank(16);
        assert!(c.validate().is_ok());
        assert_eq!(c.min_rank, 16);
        assert_eq!(c.max_rank, 16);
        assert_eq!(c.initial_rank, 16);
        // Rank zero is clamped to 1 rather than producing an invalid config.
        assert_eq!(LiveUpdateConfig::with_fixed_rank(0).initial_rank, 1);
    }

    #[test]
    fn invalid_configurations_rejected() {
        let c = LiveUpdateConfig {
            variance_threshold: 1.5,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            min_rank: 10,
            max_rank: 5,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            lora_learning_rate: 0.0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            min_table_fraction: 0.0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            max_table_fraction: 0.001,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            p99_low_threshold_ms: 20.0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            retention_minutes: 0.0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            sync_interval_steps: 0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            adaptation_interval_steps: 0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            initial_rank: 0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            hot_fraction: 0.0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            retention_max_records: 0,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());

        let c = LiveUpdateConfig {
            hot_cache_fraction: 1.5,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn quantized_serving_config_is_valid() {
        let c = LiveUpdateConfig {
            serving_storage: StorageKind::I8,
            hot_cache_fraction: 0.1,
            ..LiveUpdateConfig::default()
        };
        assert!(c.validate().is_ok());
        assert_eq!(
            LiveUpdateConfig::default().serving_storage,
            StorageKind::F64
        );
        assert_eq!(LiveUpdateConfig::default().hot_cache_fraction, 0.0);
    }
}
