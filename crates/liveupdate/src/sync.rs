//! Sparse data-parallel LoRA synchronisation with priority merge (paper §IV-E, Algorithm 3).
//!
//! Every inference node (rank) trains its own copy of the LoRA adapters on its local
//! traffic. Instead of all-reducing dense gradients, each rank only tracks the *support* of
//! its updates — the set of `(table, row)` indices it modified — and every `T_sync` steps
//! the ranks exchange exactly those rows. Write conflicts are resolved deterministically by
//! a rank-priority rule: index `i` takes the value of the highest-numbered rank that
//! modified it. Alongside the `A` rows, each touched table's dense `B` factor (a few KB) is
//! broadcast from the same priority root, so as long as the peers' adapted LoRA ranks
//! agree (the common case — rank adaptation is deterministic and fires on a shared step
//! interval), every rank serves bit-identical corrections on the exchanged support. Peers
//! whose local rank has drifted apart resize imports to their own rank (truncate/pad), so
//! they converge only on the leading `min(rank)` components until the next full sync. The
//! payload is tiny either way, and its transfer cost over the cluster fabric is what
//! Fig. 19 measures.
//!
//! The merge is expressed against the [`LoraPeer`] trait so the same protocol drives both
//! bare `Vec<LoraTable>` replicas (unit tests, analytic sweeps) and full
//! [`crate::engine::ServingNode`]s inside a [`crate::cluster::ServingCluster`], where
//! imports also rematerialise the serving rows.

use crate::lora::LoraTable;
use liveupdate_sim::collective::CollectiveModel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One entry of the deterministic merge plan: `row` of `table` takes the value held by
/// rank `winner` (the highest-numbered rank that modified the index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeAssignment {
    /// Embedding-table index.
    pub table: usize,
    /// Row within the table.
    pub row: usize,
    /// Rank whose value wins the priority merge.
    pub winner: usize,
}

/// A participant in the sparse LoRA synchronisation: anything that can export and import
/// `A` rows and the shared `B` factor of its per-table adapters.
///
/// The two provided implementations are `Vec<LoraTable>` (bare adapters) and
/// [`crate::engine::ServingNode`] (imports additionally refresh the materialised serving
/// rows so the correction becomes visible to predictions).
pub trait LoraPeer {
    /// Current LoRA rank of one table's adapter.
    fn lora_rank(&self, table: usize) -> usize;
    /// Export the `A` row of `(table, row)`: the active row, or zeros at the current rank.
    fn export_a_row(&self, table: usize, row: usize) -> Vec<f64>;
    /// Import a merged `A` row, resizing it to the local adapter's rank.
    fn import_a_row(&mut self, table: usize, row: usize, values: Vec<f64>);
    /// Export the dense `B` factor of one table (row-major `k×d`).
    fn export_b(&self, table: usize) -> Vec<f64>;
    /// Import a broadcast `B` factor of `source_rank` rows, keeping the local rank.
    fn import_b(&mut self, table: usize, b: &[f64], source_rank: usize);
    /// Called on every peer once the merge completes (imports applied). Engines use this
    /// to rematerialise serving rows; bare adapters need no post-processing.
    fn finish_sync(&mut self) {}
}

impl LoraPeer for Vec<LoraTable> {
    fn lora_rank(&self, table: usize) -> usize {
        self[table].rank()
    }

    fn export_a_row(&self, table: usize, row: usize) -> Vec<f64> {
        self[table].a_row_or_zeros(row)
    }

    fn import_a_row(&mut self, table: usize, row: usize, mut values: Vec<f64>) {
        // The receiving adapter may be at a different adapted rank; resize the row.
        values.resize(self[table].rank(), 0.0);
        self[table].set_a_row(row, values);
    }

    fn export_b(&self, table: usize) -> Vec<f64> {
        self[table].b().to_vec()
    }

    fn import_b(&mut self, table: usize, b: &[f64], source_rank: usize) {
        self[table].import_b(b, source_rank);
    }
}

/// Tracks per-rank modified-index sets and performs the periodic priority merge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseLoraSync {
    num_ranks: usize,
    sync_interval_steps: usize,
    /// `modified[rank]` = set of `(table, row)` indices modified since the last sync.
    modified: Vec<BTreeSet<(usize, usize)>>,
    step: u64,
    syncs_performed: u64,
}

/// Outcome of one synchronisation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncReport {
    /// Number of distinct `(table, row)` indices exchanged.
    pub indices_exchanged: usize,
    /// Payload bytes per rank (active `A` rows, `f64` storage).
    pub bytes_per_rank: u64,
    /// Wall-clock seconds of the AllGather under the supplied collective model.
    pub allgather_seconds: f64,
}

impl SparseLoraSync {
    /// Create the protocol state for `num_ranks` replicas syncing every
    /// `sync_interval_steps` training steps.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks == 0` or `sync_interval_steps == 0`.
    #[must_use]
    pub fn new(num_ranks: usize, sync_interval_steps: usize) -> Self {
        assert!(num_ranks > 0, "at least one rank is required");
        assert!(sync_interval_steps > 0, "sync interval must be positive");
        Self {
            num_ranks,
            sync_interval_steps,
            modified: vec![BTreeSet::new(); num_ranks],
            step: 0,
            syncs_performed: 0,
        }
    }

    /// Number of participating ranks.
    #[must_use]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of synchronisations performed so far.
    #[must_use]
    pub fn syncs_performed(&self) -> u64 {
        self.syncs_performed
    }

    /// Record that `rank` modified `row` of `table` (Algorithm 3 line 7).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of bounds.
    pub fn record_update(&mut self, rank: usize, table: usize, row: usize) {
        assert!(rank < self.num_ranks, "rank {rank} out of bounds");
        self.modified[rank].insert((table, row));
    }

    /// Pending modified indices of a rank.
    #[must_use]
    pub fn pending(&self, rank: usize) -> usize {
        self.modified[rank].len()
    }

    /// Advance the step counter; returns `true` when this step is a synchronisation point
    /// (Algorithm 3 line 8).
    pub fn tick(&mut self) -> bool {
        self.step += 1;
        self.step.is_multiple_of(self.sync_interval_steps as u64)
    }

    /// The global union of modified indices, `I_all` (Algorithm 3 line 9).
    #[must_use]
    pub fn global_modified(&self) -> Vec<(usize, usize)> {
        let mut union: BTreeSet<(usize, usize)> = BTreeSet::new();
        for set in &self.modified {
            union.extend(set.iter().copied());
        }
        union.into_iter().collect()
    }

    /// The deterministic merge plan for the pending modified sets: one assignment per index
    /// of the global union, each naming the highest-numbered rank that modified it. The
    /// plan depends only on the *sets* of recorded updates, never on the order in which
    /// they were recorded.
    #[must_use]
    pub fn merge_plan(&self) -> Vec<MergeAssignment> {
        self.global_modified()
            .into_iter()
            .map(|(table, row)| {
                let winner = (0..self.num_ranks)
                    .rev()
                    .find(|&r| self.modified[r].contains(&(table, row)))
                    .expect("index came from the union of modified sets");
                MergeAssignment { table, row, winner }
            })
            .collect()
    }

    /// Per touched table, the rank whose `B` factor is broadcast: the highest-numbered rank
    /// that modified any row of the table (the same priority rule as the row merge).
    #[must_use]
    pub fn table_winners(&self) -> Vec<(usize, usize)> {
        let mut winners: BTreeMap<usize, usize> = BTreeMap::new();
        for rank in 0..self.num_ranks {
            for &(table, _) in &self.modified[rank] {
                winners.insert(table, rank); // ascending rank loop ⇒ last write wins
            }
        }
        winners.into_iter().collect()
    }

    /// Perform the priority merge over per-rank LoRA replicas (`replicas[rank][table]`) and
    /// broadcast the merged rows back to every rank (Algorithm 3 lines 9–12). Returns a
    /// report including the estimated AllGather cost under `collective`.
    ///
    /// # Panics
    ///
    /// Panics if the replica structure does not match `num_ranks`.
    pub fn synchronize(
        &mut self,
        replicas: &mut [Vec<LoraTable>],
        collective: &CollectiveModel,
    ) -> SyncReport {
        self.synchronize_peers(replicas, collective).0
    }

    /// The generic form of [`Self::synchronize`]: apply the priority merge to any slice of
    /// [`LoraPeer`]s (Algorithm 3 lines 9–12). Every winning `A` row is exported once and
    /// imported by every other rank; each touched table's `B` factor is then broadcast from
    /// that table's priority root, and every peer gets a [`LoraPeer::finish_sync`] callback
    /// to rematerialise derived state. The pending modified sets are cleared afterwards.
    ///
    /// Returns the report together with the merge plan that was actually applied (the
    /// exchanged support), so callers never need to recompute it.
    ///
    /// # Panics
    ///
    /// Panics if `peers.len() != num_ranks`.
    pub fn synchronize_peers<P: LoraPeer>(
        &mut self,
        peers: &mut [P],
        collective: &CollectiveModel,
    ) -> (SyncReport, Vec<MergeAssignment>) {
        assert_eq!(peers.len(), self.num_ranks, "one peer per rank is required");
        let plan = self.merge_plan();
        let mut max_row_len = 0usize;
        for assignment in &plan {
            let winning_row =
                peers[assignment.winner].export_a_row(assignment.table, assignment.row);
            max_row_len = max_row_len.max(winning_row.len());
            for (rank, peer) in peers.iter_mut().enumerate() {
                if rank != assignment.winner {
                    peer.import_a_row(assignment.table, assignment.row, winning_row.clone());
                }
            }
        }
        let mut b_bytes = 0usize;
        for (table, winner) in self.table_winners() {
            let b = peers[winner].export_b(table);
            let source_rank = peers[winner].lora_rank(table);
            b_bytes += b.len() * std::mem::size_of::<f64>();
            for (rank, peer) in peers.iter_mut().enumerate() {
                if rank != winner {
                    peer.import_b(table, &b, source_rank);
                }
            }
        }
        if !plan.is_empty() {
            for peer in peers.iter_mut() {
                peer.finish_sync();
            }
        }
        let bytes_per_rank =
            (plan.len() * max_row_len.max(1) * std::mem::size_of::<f64>() + b_bytes) as u64;
        let allgather_seconds = collective.allgather_seconds(self.num_ranks, bytes_per_rank);
        for set in &mut self.modified {
            set.clear();
        }
        self.syncs_performed += 1;
        let report = SyncReport {
            indices_exchanged: plan.len(),
            bytes_per_rank,
            allgather_seconds,
        };
        (report, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_sim::collective::CollectiveAlgorithm;
    use liveupdate_sim::network::NetworkLink;
    use proptest::prelude::*;

    fn collective() -> CollectiveModel {
        CollectiveModel::new(
            NetworkLink::infiniband_edr(),
            CollectiveAlgorithm::TreeAllGather,
        )
    }

    fn replicas(num_ranks: usize) -> Vec<Vec<LoraTable>> {
        (0..num_ranks)
            .map(|r| vec![LoraTable::new(50, 4, 2, r as u64)])
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = SparseLoraSync::new(0, 8);
    }

    #[test]
    fn tick_fires_on_interval() {
        let mut s = SparseLoraSync::new(2, 3);
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(s.tick());
        assert!(!s.tick());
    }

    #[test]
    fn record_and_union() {
        let mut s = SparseLoraSync::new(3, 8);
        s.record_update(0, 0, 5);
        s.record_update(1, 0, 5);
        s.record_update(2, 0, 9);
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.global_modified(), vec![(0, 5), (0, 9)]);
    }

    #[test]
    fn priority_merge_prefers_highest_rank() {
        let mut s = SparseLoraSync::new(3, 8);
        let mut reps = replicas(3);
        // Ranks 0 and 2 both modify row 7 of table 0 with different values.
        reps[0][0].set_a_row(7, vec![1.0, 1.0]);
        reps[2][0].set_a_row(7, vec![9.0, 9.0]);
        s.record_update(0, 0, 7);
        s.record_update(2, 0, 7);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 1);
        // Every rank must now carry rank 2's value (the highest rank wins).
        for rep in &reps {
            assert_eq!(rep[0].a_row(7).unwrap(), &[9.0, 9.0]);
        }
        assert_eq!(s.syncs_performed(), 1);
        // Modified sets are reset after a sync.
        assert_eq!(s.pending(0), 0);
        assert_eq!(s.pending(2), 0);
    }

    #[test]
    fn merge_broadcasts_disjoint_updates_to_everyone() {
        let mut s = SparseLoraSync::new(2, 8);
        let mut reps = replicas(2);
        reps[0][0].set_a_row(1, vec![1.0, 0.0]);
        reps[1][0].set_a_row(2, vec![0.0, 2.0]);
        s.record_update(0, 0, 1);
        s.record_update(1, 0, 2);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 2);
        assert_eq!(reps[1][0].a_row(1).unwrap(), &[1.0, 0.0]);
        assert_eq!(reps[0][0].a_row(2).unwrap(), &[0.0, 2.0]);
        assert!(report.bytes_per_rank > 0);
        assert!(report.allgather_seconds > 0.0);
    }

    #[test]
    fn rank_mismatch_resizes_rows() {
        let mut s = SparseLoraSync::new(2, 8);
        let mut reps = replicas(2);
        // Rank 1's replica adapted to a smaller rank.
        reps[1][0].resize_rank(1);
        reps[0][0].set_a_row(4, vec![3.0, 4.0]);
        s.record_update(0, 0, 4);
        let _ = s.synchronize(&mut reps, &collective());
        assert_eq!(reps[1][0].a_row(4).unwrap(), &[3.0]);
    }

    #[test]
    fn empty_sync_costs_nothing_to_exchange() {
        let mut s = SparseLoraSync::new(4, 8);
        let mut reps = replicas(4);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 0);
        assert_eq!(report.bytes_per_rank, 0);
    }

    #[test]
    fn merge_plan_matches_priority_rule_and_table_winners() {
        let mut s = SparseLoraSync::new(3, 8);
        s.record_update(0, 0, 7);
        s.record_update(2, 0, 7);
        s.record_update(1, 1, 3);
        let plan = s.merge_plan();
        assert_eq!(
            plan,
            vec![
                MergeAssignment {
                    table: 0,
                    row: 7,
                    winner: 2
                },
                MergeAssignment {
                    table: 1,
                    row: 3,
                    winner: 1
                },
            ]
        );
        assert_eq!(s.table_winners(), vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn sync_broadcasts_b_factor_from_priority_root() {
        let mut s = SparseLoraSync::new(2, 8);
        // Different seeds ⇒ the two replicas start with different B factors.
        let mut reps = replicas(2);
        assert_ne!(reps[0][0].b(), reps[1][0].b());
        reps[1][0].set_a_row(3, vec![2.0, -1.0]);
        s.record_update(1, 0, 3);
        let report = s.synchronize(&mut reps, &collective());
        // Rank 1 is the table winner; rank 0 now carries its B and its A row, so the
        // represented deltas agree on the exchanged support.
        assert_eq!(reps[0][0].b(), reps[1][0].b());
        assert_eq!(reps[0][0].delta_row(3), reps[1][0].delta_row(3));
        // Payload = 1 A row of rank 2 plus one 2×4 B factor, in f64.
        assert_eq!(report.bytes_per_rank, ((2 + 2 * 4) * 8) as u64);
        assert_eq!(
            report.allgather_seconds,
            collective().allgather_seconds(2, report.bytes_per_rank)
        );
    }

    /// Deterministically fill per-rank replicas with `A`-row values derived from the
    /// update set, record the updates in the given order, and synchronise.
    fn run_merge(
        num_ranks: usize,
        updates: &[(usize, usize)], // (rank, row) on table 0
        order: &[usize],
    ) -> (Vec<Vec<LoraTable>>, SyncReport) {
        let mut s = SparseLoraSync::new(num_ranks, 8);
        let mut reps = replicas(num_ranks);
        for &i in order {
            let (rank, row) = updates[i];
            reps[rank][0].set_a_row(row, vec![(rank * 100 + row) as f64, row as f64]);
            s.record_update(rank, 0, row);
        }
        let report = s.synchronize(&mut reps, &collective());
        (reps, report)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The merged state and the reported cost are a pure function of the update *set*:
        /// re-running the identical scenario reproduces them exactly.
        #[test]
        fn prop_merge_is_deterministic(
            updates in proptest::collection::vec((0usize..4, 0usize..50), 1..30),
        ) {
            let order: Vec<usize> = (0..updates.len()).collect();
            let (reps_a, report_a) = run_merge(4, &updates, &order);
            let (reps_b, report_b) = run_merge(4, &updates, &order);
            prop_assert_eq!(reps_a, reps_b);
            prop_assert_eq!(report_a, report_b);
        }

        /// The merge outcome is independent of the order in which updates were recorded
        /// (rank-iteration order must not leak into the result).
        #[test]
        fn prop_merge_independent_of_recording_order(
            updates in proptest::collection::vec((0usize..4, 0usize..50), 1..30),
            shuffle_seed in 0u64..1_000,
        ) {
            use rand::{Rng, SeedableRng};
            let forward: Vec<usize> = (0..updates.len()).collect();
            let mut shuffled = forward.clone();
            let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                shuffled.swap(i, j);
            }
            let (reps_a, report_a) = run_merge(4, &updates, &forward);
            let (reps_b, report_b) = run_merge(4, &updates, &shuffled);
            prop_assert_eq!(reps_a, reps_b);
            prop_assert_eq!(report_a, report_b);
        }

        /// After a sync every rank holds identical values on the exchanged support — both
        /// the raw `A` rows and the represented delta `A[i]·B`.
        #[test]
        fn prop_all_ranks_agree_on_support_after_sync(
            updates in proptest::collection::vec((0usize..4, 0usize..50), 1..30),
        ) {
            let order: Vec<usize> = (0..updates.len()).collect();
            let mut s = SparseLoraSync::new(4, 8);
            let mut reps = replicas(4);
            for &i in &order {
                let (rank, row) = updates[i];
                reps[rank][0].set_a_row(row, vec![(rank * 100 + row) as f64, row as f64]);
                s.record_update(rank, 0, row);
            }
            let support = s.global_modified();
            s.synchronize(&mut reps, &collective());
            for &(table, row) in &support {
                let reference_a = reps[0][table].a_row(row).unwrap().to_vec();
                let reference_delta = reps[0][table].delta_row(row);
                for rep in &reps[1..] {
                    prop_assert_eq!(rep[table].a_row(row).unwrap(), &reference_a[..]);
                    prop_assert_eq!(rep[table].delta_row(row), reference_delta.clone());
                }
            }
        }

        /// Synchronisation is idempotent: re-recording the already-merged support and
        /// syncing again changes nothing.
        #[test]
        fn prop_merge_is_idempotent(
            updates in proptest::collection::vec((0usize..4, 0usize..50), 1..30),
        ) {
            let order: Vec<usize> = (0..updates.len()).collect();
            let (mut reps, first) = run_merge(4, &updates, &order);
            let mut s = SparseLoraSync::new(4, 8);
            // Every rank re-records the merged support (values are now identical
            // everywhere, so the winner's value equals every loser's value).
            let support: Vec<(usize, usize)> = updates.iter().map(|&(_, row)| (0usize, row)).collect();
            for rank in 0..4 {
                for &(table, row) in &support {
                    s.record_update(rank, table, row);
                }
            }
            let snapshot = reps.clone();
            let second = s.synchronize(&mut reps, &collective());
            prop_assert_eq!(reps, snapshot);
            prop_assert_eq!(second.indices_exchanged, first.indices_exchanged);
        }
    }

    #[test]
    fn sync_cost_grows_sublinearly_with_ranks() {
        // The same per-rank payload over more ranks: tree AllGather cost grows, but far
        // slower than linearly (Fig. 19's shape).
        let cost = |n: usize| {
            let mut s = SparseLoraSync::new(n, 8);
            let mut reps = replicas(n);
            for (r, rep) in reps.iter_mut().enumerate() {
                for row in 0..20 {
                    rep[0].set_a_row(row, vec![r as f64, 1.0]);
                    s.record_update(r, 0, row);
                }
            }
            s.synchronize(&mut reps, &collective()).allgather_seconds
        };
        let c4 = cost(4);
        let c16 = cost(16);
        assert!(c16 > c4);
        assert!(c16 < c4 * 4.0, "expected sub-linear growth: {c4} -> {c16}");
    }
}
