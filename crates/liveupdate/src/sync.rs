//! Sparse data-parallel LoRA synchronisation with priority merge (paper §IV-E, Algorithm 3).
//!
//! Every inference node (rank) trains its own copy of the LoRA adapters on its local
//! traffic. Instead of all-reducing dense gradients, each rank only tracks the *support* of
//! its updates — the set of `(table, row)` indices it modified — and every `T_sync` steps
//! the ranks exchange exactly those rows. Write conflicts are resolved deterministically by
//! a rank-priority rule: index `i` takes the value of the highest-numbered rank that
//! modified it. The payload exchanged is tiny (active `A` rows only), and its transfer cost
//! over the cluster fabric is what Fig. 19 measures.

use crate::lora::LoraTable;
use liveupdate_sim::collective::CollectiveModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tracks per-rank modified-index sets and performs the periodic priority merge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseLoraSync {
    num_ranks: usize,
    sync_interval_steps: usize,
    /// `modified[rank]` = set of `(table, row)` indices modified since the last sync.
    modified: Vec<BTreeSet<(usize, usize)>>,
    step: u64,
    syncs_performed: u64,
}

/// Outcome of one synchronisation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncReport {
    /// Number of distinct `(table, row)` indices exchanged.
    pub indices_exchanged: usize,
    /// Payload bytes per rank (active `A` rows, `f64` storage).
    pub bytes_per_rank: u64,
    /// Wall-clock seconds of the AllGather under the supplied collective model.
    pub allgather_seconds: f64,
}

impl SparseLoraSync {
    /// Create the protocol state for `num_ranks` replicas syncing every
    /// `sync_interval_steps` training steps.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks == 0` or `sync_interval_steps == 0`.
    #[must_use]
    pub fn new(num_ranks: usize, sync_interval_steps: usize) -> Self {
        assert!(num_ranks > 0, "at least one rank is required");
        assert!(sync_interval_steps > 0, "sync interval must be positive");
        Self {
            num_ranks,
            sync_interval_steps,
            modified: vec![BTreeSet::new(); num_ranks],
            step: 0,
            syncs_performed: 0,
        }
    }

    /// Number of participating ranks.
    #[must_use]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of synchronisations performed so far.
    #[must_use]
    pub fn syncs_performed(&self) -> u64 {
        self.syncs_performed
    }

    /// Record that `rank` modified `row` of `table` (Algorithm 3 line 7).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of bounds.
    pub fn record_update(&mut self, rank: usize, table: usize, row: usize) {
        assert!(rank < self.num_ranks, "rank {rank} out of bounds");
        self.modified[rank].insert((table, row));
    }

    /// Pending modified indices of a rank.
    #[must_use]
    pub fn pending(&self, rank: usize) -> usize {
        self.modified[rank].len()
    }

    /// Advance the step counter; returns `true` when this step is a synchronisation point
    /// (Algorithm 3 line 8).
    pub fn tick(&mut self) -> bool {
        self.step += 1;
        self.step % self.sync_interval_steps as u64 == 0
    }

    /// The global union of modified indices, `I_all` (Algorithm 3 line 9).
    #[must_use]
    pub fn global_modified(&self) -> Vec<(usize, usize)> {
        let mut union: BTreeSet<(usize, usize)> = BTreeSet::new();
        for set in &self.modified {
            union.extend(set.iter().copied());
        }
        union.into_iter().collect()
    }

    /// Perform the priority merge over per-rank LoRA replicas (`replicas[rank][table]`) and
    /// broadcast the merged rows back to every rank (Algorithm 3 lines 9–12). Ranks' ranks
    /// must all have identical table shapes and LoRA ranks. Returns a report including the
    /// estimated AllGather cost under `collective`.
    ///
    /// # Panics
    ///
    /// Panics if the replica structure does not match `num_ranks`.
    pub fn synchronize(
        &mut self,
        replicas: &mut [Vec<LoraTable>],
        collective: &CollectiveModel,
    ) -> SyncReport {
        assert_eq!(replicas.len(), self.num_ranks, "one replica per rank is required");
        let union = self.global_modified();
        let mut max_row_len = 0usize;
        for &(table, row) in &union {
            // Winner = highest rank id that modified the index (priority merge).
            let winner = (0..self.num_ranks)
                .rev()
                .find(|&r| self.modified[r].contains(&(table, row)))
                .expect("index came from the union of modified sets");
            let winning_row: Vec<f64> = replicas[winner][table]
                .a_row(row)
                .map(<[f64]>::to_vec)
                .unwrap_or_else(|| vec![0.0; replicas[winner][table].rank()]);
            max_row_len = max_row_len.max(winning_row.len());
            for rank in 0..self.num_ranks {
                if rank == winner {
                    continue;
                }
                // Receiving replicas may be at a different adapted rank; resize the row.
                let target_rank = replicas[rank][table].rank();
                let mut row_values = winning_row.clone();
                row_values.resize(target_rank, 0.0);
                replicas[rank][table].set_a_row(row, row_values);
            }
        }
        let bytes_per_rank = (union.len() * max_row_len.max(1) * std::mem::size_of::<f64>()) as u64;
        let allgather_seconds = collective.allgather_seconds(self.num_ranks, bytes_per_rank);
        for set in &mut self.modified {
            set.clear();
        }
        self.syncs_performed += 1;
        SyncReport {
            indices_exchanged: union.len(),
            bytes_per_rank,
            allgather_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_sim::collective::CollectiveAlgorithm;
    use liveupdate_sim::network::NetworkLink;

    fn collective() -> CollectiveModel {
        CollectiveModel::new(NetworkLink::infiniband_edr(), CollectiveAlgorithm::TreeAllGather)
    }

    fn replicas(num_ranks: usize) -> Vec<Vec<LoraTable>> {
        (0..num_ranks)
            .map(|r| vec![LoraTable::new(50, 4, 2, r as u64)])
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = SparseLoraSync::new(0, 8);
    }

    #[test]
    fn tick_fires_on_interval() {
        let mut s = SparseLoraSync::new(2, 3);
        assert!(!s.tick());
        assert!(!s.tick());
        assert!(s.tick());
        assert!(!s.tick());
    }

    #[test]
    fn record_and_union() {
        let mut s = SparseLoraSync::new(3, 8);
        s.record_update(0, 0, 5);
        s.record_update(1, 0, 5);
        s.record_update(2, 0, 9);
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.global_modified(), vec![(0, 5), (0, 9)]);
    }

    #[test]
    fn priority_merge_prefers_highest_rank() {
        let mut s = SparseLoraSync::new(3, 8);
        let mut reps = replicas(3);
        // Ranks 0 and 2 both modify row 7 of table 0 with different values.
        reps[0][0].set_a_row(7, vec![1.0, 1.0]);
        reps[2][0].set_a_row(7, vec![9.0, 9.0]);
        s.record_update(0, 0, 7);
        s.record_update(2, 0, 7);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 1);
        // Every rank must now carry rank 2's value (the highest rank wins).
        for rep in &reps {
            assert_eq!(rep[0].a_row(7).unwrap(), &[9.0, 9.0]);
        }
        assert_eq!(s.syncs_performed(), 1);
        // Modified sets are reset after a sync.
        assert_eq!(s.pending(0), 0);
        assert_eq!(s.pending(2), 0);
    }

    #[test]
    fn merge_broadcasts_disjoint_updates_to_everyone() {
        let mut s = SparseLoraSync::new(2, 8);
        let mut reps = replicas(2);
        reps[0][0].set_a_row(1, vec![1.0, 0.0]);
        reps[1][0].set_a_row(2, vec![0.0, 2.0]);
        s.record_update(0, 0, 1);
        s.record_update(1, 0, 2);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 2);
        assert_eq!(reps[1][0].a_row(1).unwrap(), &[1.0, 0.0]);
        assert_eq!(reps[0][0].a_row(2).unwrap(), &[0.0, 2.0]);
        assert!(report.bytes_per_rank > 0);
        assert!(report.allgather_seconds > 0.0);
    }

    #[test]
    fn rank_mismatch_resizes_rows() {
        let mut s = SparseLoraSync::new(2, 8);
        let mut reps = replicas(2);
        // Rank 1's replica adapted to a smaller rank.
        reps[1][0].resize_rank(1);
        reps[0][0].set_a_row(4, vec![3.0, 4.0]);
        s.record_update(0, 0, 4);
        let _ = s.synchronize(&mut reps, &collective());
        assert_eq!(reps[1][0].a_row(4).unwrap(), &[3.0]);
    }

    #[test]
    fn empty_sync_costs_nothing_to_exchange() {
        let mut s = SparseLoraSync::new(4, 8);
        let mut reps = replicas(4);
        let report = s.synchronize(&mut reps, &collective());
        assert_eq!(report.indices_exchanged, 0);
        assert_eq!(report.bytes_per_rank, 0);
    }

    #[test]
    fn sync_cost_grows_sublinearly_with_ranks() {
        // The same per-rank payload over more ranks: tree AllGather cost grows, but far
        // slower than linearly (Fig. 19's shape).
        let cost = |n: usize| {
            let mut s = SparseLoraSync::new(n, 8);
            let mut reps = replicas(n);
            for r in 0..n {
                for row in 0..20 {
                    reps[r][0].set_a_row(row, vec![r as f64, 1.0]);
                    s.record_update(r, 0, row);
                }
            }
            s.synchronize(&mut reps, &collective()).allgather_seconds
        };
        let c4 = cost(4);
        let c16 = cost(16);
        assert!(c16 > c4);
        assert!(c16 < c4 * 4.0, "expected sub-linear growth: {c4} -> {c16}");
    }
}
