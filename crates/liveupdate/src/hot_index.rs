//! The hot-index filter on the inference path (paper Fig. 7, step 2).
//!
//! For every lookup the serving engine must decide whether the embedding needs the LoRA
//! correction (`W_base[i] + A[i]·B`) or the base row alone. [`HotIndexFilter`] tracks which
//! indices have been touched by the online update path since the last full synchronisation,
//! per table, and answers that membership query.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-table set of indices whose embeddings have pending LoRA corrections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotIndexFilter {
    tables: Vec<BTreeSet<usize>>,
}

impl HotIndexFilter {
    /// Create a filter covering `num_tables` embedding tables.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables == 0`.
    #[must_use]
    pub fn new(num_tables: usize) -> Self {
        assert!(num_tables > 0, "at least one table is required");
        Self {
            tables: vec![BTreeSet::new(); num_tables],
        }
    }

    /// Number of tables covered.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Mark an index of a table as hot (recently updated by the online path).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    pub fn mark(&mut self, table: usize, index: usize) {
        self.tables[table].insert(index);
    }

    /// Mark many indices of one table.
    pub fn mark_all<I: IntoIterator<Item = usize>>(&mut self, table: usize, indices: I) {
        for idx in indices {
            self.mark(table, idx);
        }
    }

    /// Whether a lookup of `index` in `table` must take the LoRA-corrected path.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    #[must_use]
    pub fn is_hot(&self, table: usize, index: usize) -> bool {
        self.tables[table].contains(&index)
    }

    /// Number of hot indices for one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    #[must_use]
    pub fn hot_count(&self, table: usize) -> usize {
        self.tables[table].len()
    }

    /// Total hot indices across all tables.
    #[must_use]
    pub fn total_hot(&self) -> usize {
        self.tables.iter().map(BTreeSet::len).sum()
    }

    /// Retain only the indices present in `keep` for one table (mirrors LoRA pruning).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    pub fn retain(&mut self, table: usize, keep: &[usize]) {
        let keep: BTreeSet<usize> = keep.iter().copied().collect();
        self.tables[table].retain(|idx| keep.contains(idx));
    }

    /// Clear one table's hot set (after its deltas are merged into the base).
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of bounds.
    pub fn clear_table(&mut self, table: usize) {
        self.tables[table].clear();
    }

    /// Clear every table (after a full-parameter synchronisation).
    pub fn clear(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one table")]
    fn zero_tables_rejected() {
        let _ = HotIndexFilter::new(0);
    }

    #[test]
    fn mark_and_query() {
        let mut f = HotIndexFilter::new(2);
        assert_eq!(f.num_tables(), 2);
        assert!(!f.is_hot(0, 5));
        f.mark(0, 5);
        f.mark_all(1, vec![1, 2, 3]);
        assert!(f.is_hot(0, 5));
        assert!(!f.is_hot(1, 5));
        assert!(f.is_hot(1, 2));
        assert_eq!(f.hot_count(0), 1);
        assert_eq!(f.hot_count(1), 3);
        assert_eq!(f.total_hot(), 4);
    }

    #[test]
    fn duplicate_marks_counted_once() {
        let mut f = HotIndexFilter::new(1);
        f.mark(0, 7);
        f.mark(0, 7);
        assert_eq!(f.hot_count(0), 1);
    }

    #[test]
    fn retain_mirrors_pruning() {
        let mut f = HotIndexFilter::new(1);
        f.mark_all(0, 0..10);
        f.retain(0, &[2, 4, 6]);
        assert_eq!(f.hot_count(0), 3);
        assert!(f.is_hot(0, 4));
        assert!(!f.is_hot(0, 5));
    }

    #[test]
    fn clear_per_table_and_global() {
        let mut f = HotIndexFilter::new(2);
        f.mark_all(0, vec![1, 2]);
        f.mark_all(1, vec![3]);
        f.clear_table(0);
        assert_eq!(f.hot_count(0), 0);
        assert_eq!(f.hot_count(1), 1);
        f.clear();
        assert_eq!(f.total_hot(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_table_panics() {
        let f = HotIndexFilter::new(1);
        let _ = f.is_hot(3, 0);
    }
}
