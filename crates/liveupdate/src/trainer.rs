//! The in-node LoRA trainer (paper Fig. 7, online update path, step 1).
//!
//! The trainer takes a mini-batch sampled from the inference-log buffer, runs a forward and
//! backward pass through the *serving* model (whose embedding rows already include the
//! accumulated LoRA corrections), and applies the resulting row-wise gradients to the LoRA
//! factors only — the base embedding weights and all dense layers stay frozen, exactly as
//! in the paper.

use crate::lora::LoraTable;
use liveupdate_dlrm::model::DlrmModel;
use liveupdate_dlrm::sample::MiniBatch;
use liveupdate_dlrm::SparseGradient;
use serde::{Deserialize, Serialize};

/// Summary of one LoRA training step.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStepReport {
    /// Mean BCE loss of the mini-batch before the update.
    pub loss: f64,
    /// Total number of `(table, row)` pairs whose LoRA factors were updated.
    pub rows_updated: usize,
    /// Indices touched per table (used by pruning, the hot-index filter and sync).
    pub touched_per_table: Vec<Vec<usize>>,
    /// The raw row-wise gradients per table (used by the rank adapter).
    pub gradients: Vec<SparseGradient>,
}

/// Stateless LoRA training procedure (all state lives in the LoRA tables).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoraTrainer {
    /// Learning rate applied to the `A`/`B` factors.
    pub learning_rate: f64,
}

impl LoraTrainer {
    /// Create a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive and finite.
    #[must_use]
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate > 0.0 && learning_rate.is_finite(),
            "learning rate must be positive and finite"
        );
        Self { learning_rate }
    }

    /// Run one training step: compute gradients of the batch loss with respect to the
    /// embedding rows of `serving_model` (dense layers frozen) and apply them to the LoRA
    /// factors.
    ///
    /// The caller is responsible for refreshing the serving model's embedding rows with the
    /// new LoRA deltas afterwards (the engine does this for the touched rows only).
    ///
    /// # Panics
    ///
    /// Panics if the number of LoRA tables does not match the model, or the batch is empty.
    #[must_use]
    pub fn train_step(
        &self,
        serving_model: &DlrmModel,
        loras: &mut [LoraTable],
        batch: &MiniBatch,
    ) -> TrainStepReport {
        assert_eq!(
            loras.len(),
            serving_model.tables().len(),
            "one LoRA table per embedding table is required"
        );
        assert!(!batch.is_empty(), "cannot train on an empty batch");
        let grads = serving_model.compute_gradients(batch);
        let mut rows_updated = 0;
        let mut touched_per_table = Vec::with_capacity(loras.len());
        for (table_idx, table_grad) in grads.embeddings.iter().enumerate() {
            let mut touched = Vec::with_capacity(table_grad.len());
            for (&row, grad) in table_grad.iter() {
                loras[table_idx].apply_row_gradient(row, grad, self.learning_rate);
                touched.push(row);
                rows_updated += 1;
            }
            touched_per_table.push(touched);
        }
        TrainStepReport {
            loss: grads.loss,
            rows_updated,
            touched_per_table,
            gradients: grads.embeddings,
        }
    }
}

impl Default for LoraTrainer {
    fn default() -> Self {
        Self::new(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_dlrm::model::DlrmConfig;
    use liveupdate_dlrm::sample::Sample;

    fn model() -> DlrmModel {
        DlrmModel::new(DlrmConfig::tiny(2, 50, 8), 3)
    }

    fn loras(model: &DlrmModel, rank: usize) -> Vec<LoraTable> {
        model
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| LoraTable::new(t.num_rows(), t.dim(), rank, i as u64))
            .collect()
    }

    fn batch() -> MiniBatch {
        MiniBatch::new(vec![
            Sample::new(vec![0.1, -0.2], vec![vec![3], vec![7]], 1.0),
            Sample::new(vec![0.0, 0.4], vec![vec![3, 5], vec![9]], 0.0),
        ])
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_learning_rate_rejected() {
        let _ = LoraTrainer::new(0.0);
    }

    #[test]
    fn train_step_touches_only_batch_rows() {
        let m = model();
        let mut l = loras(&m, 4);
        let report = LoraTrainer::default().train_step(&m, &mut l, &batch());
        assert!(report.loss > 0.0);
        assert_eq!(report.touched_per_table.len(), 2);
        assert_eq!(report.touched_per_table[0], vec![3, 5]);
        assert_eq!(report.touched_per_table[1], vec![7, 9]);
        assert_eq!(report.rows_updated, 4);
        assert!(l[0].is_active(3) && l[0].is_active(5));
        assert!(l[1].is_active(7) && l[1].is_active(9));
        assert!(!l[0].is_active(0));
        assert_eq!(report.gradients.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let m = model();
        let mut l = loras(&m, 4);
        let _ = LoraTrainer::default().train_step(&m, &mut l, &MiniBatch::default());
    }

    #[test]
    #[should_panic(expected = "one LoRA table per embedding table")]
    fn mismatched_lora_count_rejected() {
        let m = model();
        let mut l = loras(&m, 4);
        l.pop();
        let _ = LoraTrainer::default().train_step(&m, &mut l, &batch());
    }

    #[test]
    fn dense_layers_and_base_tables_stay_frozen() {
        let m = model();
        let before = m.clone();
        let mut l = loras(&m, 4);
        let _ = LoraTrainer::default().train_step(&m, &mut l, &batch());
        // The trainer only has a shared reference to the model, so nothing can change; the
        // assertion documents the frozen-base contract explicitly.
        assert_eq!(m, before);
    }

    #[test]
    fn repeated_steps_reduce_loss_when_serving_rows_are_refreshed() {
        // Emulate the engine loop: after each step, patch the serving model rows with the
        // LoRA deltas so the next forward pass sees the adapted embeddings.
        let mut serving = model();
        let base = serving.tables().to_vec();
        let mut l = loras(&serving, 4);
        let trainer = LoraTrainer::new(0.1);
        let b = batch();
        let initial = serving.compute_gradients(&b).loss;
        for _ in 0..100 {
            let report = trainer.train_step(&serving, &mut l, &b);
            for (t, touched) in report.touched_per_table.iter().enumerate() {
                for &row in touched {
                    let eff = l[t].effective_row(row, base[t].row(row));
                    serving.tables_mut()[t].set_row(row, &eff);
                }
            }
        }
        let final_loss = serving.compute_gradients(&b).loss;
        assert!(
            final_loss < initial * 0.95,
            "LoRA training should reduce loss: {initial} -> {final_loss}"
        );
    }
}
