//! Determinism parity: the threaded runtime, restricted to one worker with synchronous
//! updates, must reproduce the plain `ServingNode` serve/update loop **bit-for-bit**.
//!
//! This pins the snapshot/ingest/publish decomposition: routing requests through the
//! bounded queue, the deadline batcher, the epoch-swap snapshot serve, the split
//! `ingest_batch`, and inline update rounds yields exactly the model state (embedding
//! rows, LoRA factors, RNG-driven training trajectory, buffers) of the monolithic
//! single-threaded `serve_batch` + `online_update_round` reference.
//!
//! The test controls batch boundaries by submitting exactly `max_batch` requests per
//! window and waiting for the runtime to drain before the next window, so the deadline
//! batcher always closes full windows.

use liveupdate::config::LiveUpdateConfig;
use liveupdate::engine::ServingNode;
use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
use liveupdate_dlrm::sample::MiniBatch;
use liveupdate_runtime::config::{RuntimeConfig, UpdateMode};
use liveupdate_runtime::runtime::ServingRuntime;
use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};
use std::time::Duration;

const WINDOW: usize = 48;
const WINDOWS: usize = 4;
const ROUNDS_PER_WINDOW: usize = 2;
const ONLINE_BATCH: usize = 32;

fn fresh_node() -> ServingNode {
    let model = DlrmModel::new(
        DlrmConfig {
            table_sizes: vec![250, 250],
            ..DlrmConfig::tiny(2, 250, 8)
        },
        23,
    );
    ServingNode::new(model, LiveUpdateConfig::default())
}

fn windows() -> Vec<(f64, MiniBatch)> {
    let mut w = SyntheticWorkload::new(WorkloadConfig {
        num_tables: 2,
        table_size: 250,
        ..WorkloadConfig::default()
    });
    (0..WINDOWS)
        .map(|i| {
            let t = i as f64 * 10.0;
            (t, w.batch_at(t, WINDOW))
        })
        .collect()
}

#[test]
fn one_worker_synchronous_runtime_matches_plain_serving_loop_bit_for_bit() {
    let traffic = windows();

    // Reference: the existing monolithic serve/update loop.
    let mut reference = fresh_node();
    for (t, batch) in &traffic {
        reference.serve_batch(*t, batch);
        for _ in 0..ROUNDS_PER_WINDOW {
            reference.online_update_round(*t, ONLINE_BATCH);
        }
    }

    // Runtime: 1 worker, synchronous updates after every full window batch.
    let runtime = ServingRuntime::start(
        fresh_node(),
        RuntimeConfig {
            num_workers: 1,
            queue_capacity: 2 * WINDOW,
            max_batch: WINDOW,
            // Generous deadline: the batcher must close windows on max_batch, never on
            // time, even if this test thread stalls mid-submission.
            batch_deadline_us: 10_000_000,
            update: UpdateMode::Synchronous {
                every_batches: 1,
                rounds: ROUNDS_PER_WINDOW,
                batch_size: ONLINE_BATCH,
            },
            ..RuntimeConfig::default()
        },
    );
    let mut sent = 0u64;
    for (t, batch) in &traffic {
        for sample in batch.iter() {
            assert!(runtime.submit(0, sample.clone(), *t), "queue closed early");
        }
        sent += batch.len() as u64;
        // Drain before the next window so batch boundaries match the reference loop.
        assert!(
            runtime.wait_processed(sent, Duration::from_secs(60)),
            "runtime stalled at {sent} requests"
        );
    }
    let (report, node) = runtime.finish();

    // Full bit-for-bit state equality.
    assert_eq!(
        node.steps(),
        reference.steps(),
        "same number of update rounds"
    );
    assert_eq!(
        node.serving_model(),
        reference.serving_model(),
        "serving models diverged"
    );
    assert_eq!(node.loras(), reference.loras(), "LoRA factors diverged");
    assert_eq!(node.current_ranks(), reference.current_ranks());
    assert_eq!(node.lora_memory_bytes(), reference.lora_memory_bytes());
    assert_eq!(node.buffered_records(), reference.buffered_records());
    assert_eq!(
        node.state_checksum(),
        reference.state_checksum(),
        "state checksums must agree"
    );
    // And the published view converged to the final state.
    let (epoch, snapshot) = runtime_final(&report);
    assert_eq!(epoch, WINDOWS as u64, "one publication per window");
    assert_eq!(
        snapshot,
        node.snapshot().checksum(),
        "last published snapshot is the final state"
    );

    assert_eq!(report.completed, (WINDOW * WINDOWS) as u64);
    assert_eq!(
        report.batches, WINDOWS as u64,
        "every window closed as one full batch"
    );
    assert_eq!(
        report.updater.update_rounds,
        (WINDOWS * ROUNDS_PER_WINDOW) as u64
    );
}

/// Last published `(epoch, checksum)` of a run.
fn runtime_final(report: &liveupdate_runtime::report::RuntimeReport) -> (u64, u64) {
    *report
        .updater
        .published
        .last()
        .expect("at least the initial publication")
}

#[test]
fn synchronous_runtime_is_reproducible_across_runs() {
    // Two identical runtime runs produce identical final checksums — the threaded
    // machinery introduces no hidden nondeterminism when batch boundaries are pinned.
    let run = || {
        let traffic = windows();
        let runtime = ServingRuntime::start(
            fresh_node(),
            RuntimeConfig {
                num_workers: 1,
                queue_capacity: 2 * WINDOW,
                max_batch: WINDOW,
                batch_deadline_us: 10_000_000,
                update: UpdateMode::Synchronous {
                    every_batches: 1,
                    rounds: ROUNDS_PER_WINDOW,
                    batch_size: ONLINE_BATCH,
                },
                ..RuntimeConfig::default()
            },
        );
        let mut sent = 0u64;
        for (t, batch) in &traffic {
            for sample in batch.iter() {
                assert!(runtime.submit(0, sample.clone(), *t));
            }
            sent += batch.len() as u64;
            assert!(runtime.wait_processed(sent, Duration::from_secs(60)));
        }
        let (report, node) = runtime.finish();
        (node.state_checksum(), report.updater.published)
    };
    let (checksum_a, published_a) = run();
    let (checksum_b, published_b) = run();
    assert_eq!(checksum_a, checksum_b);
    assert_eq!(published_a, published_b);
}
