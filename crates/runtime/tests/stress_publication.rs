//! Concurrency stress test of the epoch-swap publication protocol.
//!
//! Reader threads continuously serve from whatever snapshot they observe while the
//! updater trains and swaps epochs as fast as it can. The invariants:
//!
//! 1. **No torn state** — every observed snapshot's recomputed checksum matches the
//!    checksum stored at capture time;
//! 2. **Only published state** — every observed `(epoch, checksum)` pair is exactly one
//!    the updater published;
//! 3. **Monotonicity** — per reader, observed epochs never go backwards.
//!
//! This runs in the default `cargo test -q` tier (CI), sized to finish in seconds.

use liveupdate::config::LiveUpdateConfig;
use liveupdate::engine::ServingNode;
use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
use liveupdate_runtime::epoch::EpochPublisher;
use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const PUBLICATIONS: u64 = 40;
const READERS: usize = 4;

#[test]
fn readers_never_observe_torn_or_unpublished_state() {
    let model = DlrmModel::new(DlrmConfig::tiny(2, 200, 8), 17);
    let mut node = ServingNode::new(model, LiveUpdateConfig::default());
    let mut workload = SyntheticWorkload::new(WorkloadConfig {
        num_tables: 2,
        table_size: 200,
        ..WorkloadConfig::default()
    });
    // Give the trainer real data so every round actually rewrites serving rows.
    node.serve_batch(0.0, &workload.batch_at(0.0, 128));
    let probe = Arc::new(workload.batch_at(1.0, 8));

    let initial = node.snapshot();
    let mut published: Vec<(u64, u64)> = vec![(0, initial.checksum())];
    let publisher = EpochPublisher::new(initial);
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let mut reader = publisher.reader();
        let done = Arc::clone(&done);
        let probe = Arc::clone(&probe);
        readers.push(thread::spawn(move || {
            let mut observed: Vec<(u64, u64)> = Vec::new();
            let mut last_epoch = 0u64;
            let mut serves = 0u64;
            while !done.load(Ordering::Acquire) {
                reader.refresh();
                let snapshot = reader.get();
                // Invariant 1: the snapshot is internally consistent (not torn).
                assert!(
                    snapshot.verify_checksum(),
                    "torn snapshot observed at epoch {}",
                    reader.epoch()
                );
                // Invariant 3: epochs are monotone per reader.
                assert!(
                    reader.epoch() >= last_epoch,
                    "epoch moved backwards: {} after {last_epoch}",
                    reader.epoch()
                );
                last_epoch = reader.epoch();
                if observed.last().map(|&(e, _)| e) != Some(reader.epoch()) {
                    observed.push((reader.epoch(), snapshot.checksum()));
                }
                // Actually serve from the snapshot while the swaps happen.
                let report = snapshot.serve_batch(&probe);
                assert_eq!(report.requests, probe.len());
                serves += 1;
            }
            (observed, serves)
        }));
    }

    // The updater: train and publish as fast as possible.
    for _ in 0..PUBLICATIONS {
        node.online_update_round(1.0, 32);
        let snapshot = node.snapshot();
        let checksum = snapshot.checksum();
        let epoch = publisher.publish(snapshot);
        published.push((epoch, checksum));
    }
    done.store(true, Ordering::Release);

    let published_by_epoch: HashMap<u64, u64> = published.iter().copied().collect();
    assert_eq!(
        published_by_epoch.len(),
        PUBLICATIONS as usize + 1,
        "epochs are unique"
    );

    let mut total_observed_epochs = 0usize;
    for handle in readers {
        let (observed, serves) = handle.join().expect("reader panicked");
        assert!(serves > 0, "every reader must have served");
        for (epoch, checksum) in &observed {
            // Invariant 2: only published (epoch, checksum) pairs are ever visible.
            assert_eq!(
                published_by_epoch.get(epoch),
                Some(checksum),
                "observed epoch {epoch} with a checksum that was never published"
            );
        }
        total_observed_epochs += observed.len();
    }
    assert!(
        total_observed_epochs >= READERS,
        "every reader observed at least its initial epoch"
    );
    assert_eq!(publisher.epoch(), PUBLICATIONS);

    // Training must have produced PUBLICATIONS distinct checksums (the rounds had data).
    let distinct: std::collections::HashSet<u64> = published.iter().map(|&(_, c)| c).collect();
    assert!(
        distinct.len() > PUBLICATIONS as usize / 2,
        "update rounds should keep changing the model: {} distinct checksums",
        distinct.len()
    );
}
