//! # liveupdate_runtime — the real multithreaded serving runtime
//!
//! Everything below `liveupdate::cluster` simulates serving on a discrete-event queue;
//! nothing ever runs concurrently, so the paper's central claim — inference-side LoRA
//! updates add *near-zero overhead* to the serving path — was untested against real
//! contention. This crate makes the claim measurable: a `std::thread`-based runtime that
//! serves real request streams with wall-clock latencies while a co-located trainer
//! updates the model live.
//!
//! ## Architecture (paper Fig. 7, made concrete)
//!
//! ```text
//!  open-loop Poisson loadgen (ArrivalModel → RealTimePacer)
//!        │ try_send (bounded MPSC, shed on overflow)
//!        ▼
//!  per-worker request queues ──► worker threads:
//!        deadline batcher (≤ max_batch or batch_deadline_us)
//!        serve read-only from the adopted ServingSnapshot
//!        record wall-clock latency; forward traffic ──► ingest channel
//!                                                          │
//!  EpochPublisher ◄── publish(snapshot) ── updater thread: ▼
//!   (atomic epoch        every `interval`:    authoritative ServingNode
//!    + Arc swap)         ingest → online_update_round → snapshot
//! ```
//!
//! * **Load generation** ([`loadgen`]) — an open-loop Poisson process paced from
//!   [`liveupdate_workload::arrival::ArrivalModel`]; requests carry their *scheduled*
//!   arrival instant so measured latency is free of coordinated omission.
//! * **Batching** ([`batcher`]) — DeepRecSys-style deadline batching: a batch closes at
//!   `max_batch` requests or `batch_deadline_us` after its first request.
//! * **Publication** ([`epoch`]) — the epoch swap. Workers serve from an immutable
//!   [`liveupdate::snapshot::ServingSnapshot`]; the updater publishes a new one per
//!   round by swapping an `Arc` and bumping an atomic epoch. The serve hot path takes
//!   **no lock**: one atomic load per batch, an `Arc` clone only when the epoch moved.
//!   No lock is ever held across training — this is the paper's near-zero-overhead
//!   property made literal.
//! * **Updating** (the private `updater` thread + [`policy`]) — the co-located trainer:
//!   owns the only mutable [`liveupdate::engine::ServingNode`], ingests served traffic
//!   into the retention buffer, and on each wall-clock cadence tick runs the mounted
//!   [`policy::UpdatePolicy`] — LiveUpdate LoRA rounds by default, or the QuickUpdate /
//!   DeltaUpdate parameter-shipping baselines for real-contention comparisons — then
//!   publishes.
//! * **Routing** ([`router`]) — submission is keyed by the request: the lock-free
//!   [`router::Router`] (hash-by-user or round-robin, per
//!   [`config::RuntimeConfig::routing`]) picks the worker queue, so callers never choose
//!   an index by hand.
//! * **Measurement** ([`report`]) — real wall-clock QPS, P50/P99/max latency (via
//!   [`liveupdate_sim::latency::LatencyRecorder`]), shed counts, batch shapes, update
//!   round times, and the full `(epoch, checksum)` publication history.
//! * **Telemetry** ([`telemetry`]) — a [`liveupdate_obs`] registry shared by every
//!   thread: lock-free counters/gauges/histograms under the workspace-wide metric-name
//!   contract plus a trace ring of update/publish/batch/shed events. Scrape live with
//!   [`runtime::ServingRuntime::scrape`]; the final snapshot lands in
//!   [`report::RuntimeReport::telemetry`]. Disable per-run with
//!   [`config::RuntimeConfig::telemetry`].
//!
//! The update modes of [`config::UpdateMode`] form the interference experiment:
//! `Disabled` is the baseline arm (identical ingestion, no training), `Background` is
//! LiveUpdate, and `Synchronous` is the deterministic single-threaded reference that the
//! determinism-parity test pins against the plain `ServingNode` serve/update loop.
//!
//! ## Quickstart
//!
//! ```
//! use liveupdate::config::LiveUpdateConfig;
//! use liveupdate::engine::ServingNode;
//! use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
//! use liveupdate_runtime::config::{RuntimeConfig, UpdateMode};
//! use liveupdate_runtime::runtime::ServingRuntime;
//! use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};
//! use std::time::Duration;
//!
//! let model = DlrmModel::new(DlrmConfig::tiny(2, 200, 8), 7);
//! let node = ServingNode::new(model, LiveUpdateConfig::default());
//! let runtime = ServingRuntime::start(
//!     node,
//!     RuntimeConfig { num_workers: 2, update: UpdateMode::Disabled, ..RuntimeConfig::default() },
//! );
//!
//! let mut workload = SyntheticWorkload::new(WorkloadConfig {
//!     num_tables: 2, table_size: 200, ..WorkloadConfig::default()
//! });
//! for (i, sample) in workload.batch_at(0.0, 32).iter().enumerate() {
//!     runtime.submit(i % 2, sample.clone(), 0.0);
//! }
//! assert!(runtime.wait_processed(32, Duration::from_secs(30)));
//! let (report, _node) = runtime.finish();
//! assert_eq!(report.completed, 32);
//! assert!(report.qps > 0.0);
//! ```

pub mod batcher;
pub mod config;
pub mod epoch;
pub mod loadgen;
pub mod policy;
pub mod report;
pub mod request;
pub mod router;
pub mod runtime;
pub mod telemetry;
mod updater;
mod worker;

pub use batcher::BatcherConfig;
pub use config::{RuntimeConfig, UpdateMode};
pub use epoch::{EpochPublisher, EpochReader};
pub use loadgen::{run_open_loop, LoadGenConfig, LoadGenReport};
pub use policy::{
    policy_for_strategy, DeltaUpdatePolicy, LiveUpdatePolicy, PolicyTick, QuickUpdatePolicy,
    UpdatePolicy,
};
pub use report::{RuntimeReport, UpdaterReport, WorkerReport};
pub use request::Request;
pub use router::Router;
pub use runtime::{ServingRuntime, SubmitOutcome};
pub use telemetry::Telemetry;
