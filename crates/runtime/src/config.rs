//! Configuration of the multithreaded serving runtime.

use crate::batcher::BatcherConfig;
use liveupdate::error::ConfigError;
use liveupdate_workload::shard::ShardPolicy;
use std::time::Duration;

/// How (and whether) the LoRA updater runs alongside serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// No online training: the updater thread only ingests served traffic into the
    /// retention buffer and never trains or publishes. This is the baseline arm of the
    /// interference measurement.
    Disabled,
    /// The paper's deployment shape: a background updater thread trains on a shadow node
    /// and publishes a fresh snapshot via the epoch swap after every round.
    Background {
        /// Wall-clock pause between update rounds.
        interval: Duration,
        /// `online_update_round` calls per publication.
        rounds_per_update: usize,
        /// Mini-batch size of each round.
        batch_size: usize,
    },
    /// Deterministic single-threaded reference mode: the (single) worker thread itself
    /// ingests and trains inline between batches, publishing after every update. Used by
    /// the determinism-parity tests; requires `num_workers == 1`.
    Synchronous {
        /// Run the update block after every `every_batches` coalesced batches.
        every_batches: usize,
        /// `online_update_round` calls per update block.
        rounds: usize,
        /// Mini-batch size of each round.
        batch_size: usize,
    },
}

/// Parameters of a [`ServingRuntime`](crate::runtime::ServingRuntime).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Number of worker (inference) threads, each with its own request queue.
    pub num_workers: usize,
    /// Capacity of each worker's bounded MPSC request queue; an open-loop load
    /// generator drops (sheds) requests when the queue is full.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one inference batch.
    pub max_batch: usize,
    /// Deadline from a batch's first request until it closes, in microseconds.
    pub batch_deadline_us: u64,
    /// How the runtime's [`Router`](crate::router::Router) assigns requests to worker
    /// queues when callers submit via the routed entry points.
    pub routing: ShardPolicy,
    /// The updater arrangement.
    pub update: UpdateMode,
    /// Whether the runtime creates a [`Telemetry`](crate::telemetry::Telemetry)
    /// registry and instruments its threads with it. On by default; the
    /// `obs_overhead` bench runs both arms to pin the instrumentation cost on the
    /// serve path at near zero. With telemetry off,
    /// [`ServingRuntime::scrape`](crate::runtime::ServingRuntime::scrape) returns no
    /// rows.
    pub telemetry: bool,
    /// Fraction of requests carrying a tracing span (`0.0..=1.0`). The decision is a
    /// deterministic hash of the trace id
    /// ([`TraceSampler`](liveupdate_obs::TraceSampler)), so a driver and its
    /// replicas configured with the same rate agree per-request without
    /// coordination. `0.0` (the default) disables request tracing entirely; requires
    /// `telemetry` to have any effect.
    pub trace_sample_rate: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            num_workers: 2,
            queue_capacity: 1024,
            max_batch: 32,
            batch_deadline_us: 1_000,
            routing: ShardPolicy::HashByUser,
            update: UpdateMode::Background {
                interval: Duration::from_millis(250),
                rounds_per_update: 1,
                batch_size: 32,
            },
            telemetry: true,
            trace_sample_rate: 0.0,
        }
    }
}

impl RuntimeConfig {
    /// The per-worker batcher parameters.
    #[must_use]
    pub fn batcher(&self) -> BatcherConfig {
        BatcherConfig {
            max_batch: self.max_batch,
            batch_deadline: Duration::from_micros(self.batch_deadline_us),
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_workers == 0 {
            return Err(ConfigError::NonPositive {
                field: "runtime.num_workers",
            });
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::NonPositive {
                field: "runtime.queue_capacity",
            });
        }
        if self.max_batch == 0 {
            return Err(ConfigError::NonPositive {
                field: "runtime.max_batch",
            });
        }
        if !(0.0..=1.0).contains(&self.trace_sample_rate) {
            return Err(ConfigError::Constraint {
                field: "runtime.trace_sample_rate",
                requirement: "sampling rate must be within 0.0..=1.0",
            });
        }
        match self.update {
            UpdateMode::Disabled => {}
            UpdateMode::Background {
                rounds_per_update,
                batch_size,
                ..
            } => {
                if rounds_per_update == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "runtime.update.rounds_per_update",
                    });
                }
                if batch_size == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "runtime.update.batch_size",
                    });
                }
            }
            UpdateMode::Synchronous {
                every_batches,
                rounds,
                batch_size,
            } => {
                if self.num_workers != 1 {
                    return Err(ConfigError::Constraint {
                        field: "runtime.num_workers",
                        requirement: "synchronous updates require exactly one worker",
                    });
                }
                if every_batches == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "runtime.update.every_batches",
                    });
                }
                if rounds == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "runtime.update.rounds",
                    });
                }
                if batch_size == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "runtime.update.batch_size",
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(RuntimeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = RuntimeConfig {
            num_workers: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            queue_capacity: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            max_batch: 0,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            trace_sample_rate: 1.5,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RuntimeConfig {
            trace_sample_rate: f64::NAN,
            ..RuntimeConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = RuntimeConfig {
            update: UpdateMode::Synchronous {
                every_batches: 1,
                rounds: 1,
                batch_size: 8,
            },
            ..RuntimeConfig::default()
        };
        c.num_workers = 2;
        assert!(
            c.validate().is_err(),
            "synchronous mode is single-worker only"
        );
        c.num_workers = 1;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn batcher_config_mirrors_runtime_config() {
        let c = RuntimeConfig {
            max_batch: 7,
            batch_deadline_us: 123,
            ..RuntimeConfig::default()
        };
        let b = c.batcher();
        assert_eq!(b.max_batch, 7);
        assert_eq!(b.batch_deadline, Duration::from_micros(123));
        assert!(b.is_valid());
    }
}
