//! The unit of work flowing through the runtime's queues.

use liveupdate_dlrm::sample::Sample;
use liveupdate_obs::TraceContext;
use std::fmt;
use std::time::Instant;

/// Completion callback carrying one prediction back to whatever transport submitted the
/// request (the TCP replica server hands the value to its connection writer; in-process
/// submitters usually don't attach one). Invoked by the worker thread right after the
/// batch containing the request is served.
pub struct ReplyTo(Box<dyn FnOnce(f64) + Send>);

impl ReplyTo {
    /// Wrap a completion callback.
    #[must_use]
    pub fn new(f: impl FnOnce(f64) + Send + 'static) -> Self {
        Self(Box::new(f))
    }

    /// Deliver the prediction to the submitter.
    pub fn complete(self, prediction: f64) {
        (self.0)(prediction);
    }
}

impl fmt::Debug for ReplyTo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ReplyTo")
    }
}

/// One inference request: the sample to score, its simulated stream timestamp (what the
/// online trainer treats as "now" for retention and drift), the wall-clock submit
/// instant the latency measurement starts from, and an optional reply path.
#[derive(Debug)]
pub struct Request {
    /// The request payload.
    pub sample: Sample,
    /// Simulated stream time in minutes (drives retention-buffer timestamps).
    pub time_minutes: f64,
    /// Wall-clock instant the request entered the system.
    pub submitted: Instant,
    /// Where to deliver the prediction, if the submitter wants it back.
    pub reply: Option<ReplyTo>,
    /// The request's tracing span, present only when its trace was sampled. The
    /// submit path stamps `enqueued`; the worker stamps the remaining stage
    /// boundaries and finishes the span after reply delivery. Unsampled requests
    /// carry `None` and pay nothing.
    pub trace: Option<TraceContext>,
}

impl Request {
    /// Create a request submitted now, with no reply path and no trace.
    #[must_use]
    pub fn new(sample: Sample, time_minutes: f64) -> Self {
        Self {
            sample,
            time_minutes,
            submitted: Instant::now(),
            reply: None,
            trace: None,
        }
    }
}
