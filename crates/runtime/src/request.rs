//! The unit of work flowing through the runtime's queues.

use liveupdate_dlrm::sample::Sample;
use std::time::Instant;

/// One inference request: the sample to score, its simulated stream timestamp (what the
/// online trainer treats as "now" for retention and drift), and the wall-clock submit
/// instant the latency measurement starts from.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request payload.
    pub sample: Sample,
    /// Simulated stream time in minutes (drives retention-buffer timestamps).
    pub time_minutes: f64,
    /// Wall-clock instant the request entered the system.
    pub submitted: Instant,
}

impl Request {
    /// Create a request submitted now.
    #[must_use]
    pub fn new(sample: Sample, time_minutes: f64) -> Self {
        Self {
            sample,
            time_minutes,
            submitted: Instant::now(),
        }
    }
}
