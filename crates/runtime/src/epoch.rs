//! Epoch-swap publication: lock-free reads of a periodically replaced immutable value.
//!
//! This is the paper's "near-zero overhead" property made literal. The updater thread
//! trains on its own shadow [`ServingNode`](liveupdate::engine::ServingNode) and, once
//! per round, publishes an immutable snapshot by swapping an `Arc` pointer and bumping an
//! epoch counter. Worker threads keep a cached `Arc` to the snapshot they last adopted;
//! their serve hot path is one relaxed-to-acquire atomic load to ask "did the epoch
//! move?" — no lock at all while the answer is no. Only when a new epoch is observed
//! (once per publication per worker, not once per request) does a reader take the slot
//! mutex for the few nanoseconds an `Arc` clone costs. No lock is ever held across
//! training, serving, or snapshot capture.
//!
//! The `(epoch, value)` pair lives together under the slot mutex, so a refresh always
//! adopts a consistent pair; the separate [`AtomicU64`] is only the cheap change
//! detector. Old snapshots are freed by the last reader that drops its `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The write side: owns the current `(epoch, value)` slot.
#[derive(Debug)]
pub struct EpochPublisher<T> {
    slot: Mutex<(u64, Arc<T>)>,
    epoch: AtomicU64,
    /// When the publisher was created — the zero point of the publish stamps.
    created: Instant,
    /// Microseconds (since `created`) of the most recent publication. Lets any thread
    /// answer "how old is the published snapshot?" — the freshness gauge `epoch_age_us`
    /// — with one relaxed load and no lock.
    published_at_us: AtomicU64,
}

impl<T> EpochPublisher<T> {
    /// Publish `initial` as epoch 0.
    #[must_use]
    pub fn new(initial: T) -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new((0, Arc::new(initial))),
            epoch: AtomicU64::new(0),
            created: Instant::now(),
            published_at_us: AtomicU64::new(0),
        })
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.created.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Replace the published value, returning the new epoch. The slot lock is held only
    /// for the pointer exchange — never across the construction of `value`.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = self.slot.lock().expect("epoch slot poisoned");
        let next = slot.0 + 1;
        *slot = (next, Arc::new(value));
        // ORDERING: Release pairs with the Acquire load in `publish_age_us`, so a
        // thread that observes the new timestamp also observes everything written
        // before this publication.
        self.published_at_us.store(self.now_us(), Ordering::Release);
        // Publish the change detector while still holding the lock, so a reader that
        // sees the new epoch and then locks the slot can never find an older pair.
        // ORDERING: Release pairs with the Acquire loads in `epoch`/`refresh`; a reader
        // that sees `next` is guaranteed to find at least this `(epoch, value)` pair
        // behind the slot lock — the happens-before edge of the publication protocol.
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// Age of the current publication in microseconds: how long the serving snapshot
    /// has gone without replacement. This is the paper's freshness metric as a live
    /// number; one relaxed load, safe to call from any thread at any rate.
    #[must_use]
    pub fn publish_age_us(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release store in `publish`; the timestamp
        // read here is never newer than the publication it describes.
        let published_at = self.published_at_us.load(Ordering::Acquire);
        self.now_us().saturating_sub(published_at)
    }

    /// The most recently published epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release store in `publish`; observing epoch
        // N here makes the N-th slot contents visible to a subsequent `load`.
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the current `(epoch, value)` pair (takes the slot lock briefly).
    #[must_use]
    pub fn load(&self) -> (u64, Arc<T>) {
        let slot = self.slot.lock().expect("epoch slot poisoned");
        (slot.0, Arc::clone(&slot.1))
    }

    /// Create a reader starting from the currently published value.
    #[must_use]
    pub fn reader(self: &Arc<Self>) -> EpochReader<T> {
        let (epoch, value) = self.load();
        EpochReader {
            publisher: Arc::clone(self),
            cached_epoch: epoch,
            cached: value,
            refreshes: 0,
        }
    }
}

/// The read side: one per worker thread. Holds a cached `Arc` to the last adopted
/// snapshot; [`EpochReader::refresh`] is the only point of contact with the publisher.
#[derive(Debug)]
pub struct EpochReader<T> {
    publisher: Arc<EpochPublisher<T>>,
    cached_epoch: u64,
    cached: Arc<T>,
    refreshes: u64,
}

impl<T> EpochReader<T> {
    /// Adopt the latest publication if the epoch moved. Returns `true` when a newer
    /// snapshot was adopted. The fast path (no new epoch) is a single atomic load.
    pub fn refresh(&mut self) -> bool {
        // ORDERING: Acquire pairs with the Release store in `publish`; a changed epoch
        // guarantees the slot behind the lock already holds the pair for that epoch
        // (or newer), so the `load` below can never adopt a stale value.
        if self.publisher.epoch.load(Ordering::Acquire) == self.cached_epoch {
            return false;
        }
        let (epoch, value) = self.publisher.load();
        debug_assert!(epoch >= self.cached_epoch, "epochs never move backwards");
        let adopted = epoch != self.cached_epoch;
        self.cached_epoch = epoch;
        self.cached = value;
        if adopted {
            self.refreshes += 1;
        }
        adopted
    }

    /// The currently adopted snapshot. Never blocks, never touches shared state.
    #[must_use]
    pub fn get(&self) -> &Arc<T> {
        &self.cached
    }

    /// Epoch of the currently adopted snapshot.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cached_epoch
    }

    /// How many times this reader adopted a newer publication.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Age of the publisher's *current* publication (see
    /// [`EpochPublisher::publish_age_us`]). Immediately after a [`Self::refresh`] that
    /// adopted, this is the publication-to-first-serve lag of the adopted snapshot.
    #[must_use]
    pub fn publish_age_us(&self) -> u64 {
        self.publisher.publish_age_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn initial_value_is_epoch_zero() {
        let p = EpochPublisher::new(41);
        assert_eq!(p.epoch(), 0);
        let (e, v) = p.load();
        assert_eq!((e, *v), (0, 41));
        let r = p.reader();
        assert_eq!(r.epoch(), 0);
        assert_eq!(**r.get(), 41);
    }

    #[test]
    fn publish_bumps_epoch_and_readers_adopt_lazily() {
        let p = EpochPublisher::new(0);
        let mut r = p.reader();
        assert!(!r.refresh(), "no publication yet");
        assert_eq!(p.publish(1), 1);
        assert_eq!(p.publish(2), 2);
        // The reader skips straight to the newest value, counting one adoption.
        assert!(r.refresh());
        assert_eq!((**r.get(), r.epoch(), r.refreshes()), (2, 2, 1));
        assert!(!r.refresh(), "already current");
    }

    #[test]
    fn old_snapshots_survive_while_a_reader_holds_them() {
        let p = EpochPublisher::new(String::from("old"));
        let r = p.reader();
        p.publish(String::from("new"));
        // The reader never refreshed: it still serves the old value, un-freed.
        assert_eq!(r.get().as_str(), "old");
        assert_eq!(p.load().1.as_str(), "new");
    }

    #[test]
    fn concurrent_readers_see_consistent_pairs() {
        // Publish (i, i) pairs; readers must never observe a pair whose halves disagree.
        let p = EpochPublisher::new((0u64, 0u64));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut reader = p.reader();
            handles.push(thread::spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..20_000 {
                    reader.refresh();
                    let v = reader.get();
                    assert_eq!(v.0, v.1, "torn pair observed");
                    assert!(reader.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = reader.epoch();
                }
                last_epoch
            }));
        }
        for i in 1..=500u64 {
            p.publish((i, i));
        }
        for h in handles {
            let final_epoch = h.join().expect("reader panicked");
            assert!(final_epoch <= 500);
        }
        assert_eq!(p.epoch(), 500);
    }
}
