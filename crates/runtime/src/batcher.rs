//! Deadline-based request batching (DeepRecSys-style).
//!
//! Each worker thread coalesces requests from its bounded queue into inference batches:
//! a batch closes when it reaches `max_batch` requests **or** `batch_deadline` has
//! elapsed since its first request arrived, whichever comes first. Large batches
//! amortise the model's per-batch overhead at high load; the deadline bounds the
//! queueing delay a lone request can suffer at low load — the same latency/throughput
//! knee the DeepRecSys scheduler navigates.

use crate::request::Request;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Batching parameters of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Maximum requests coalesced into one inference batch.
    pub max_batch: usize,
    /// Deadline from the arrival of a batch's first request until the batch closes.
    pub batch_deadline: Duration,
}

impl BatcherConfig {
    /// Validate the parameters.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.max_batch > 0
    }
}

/// Block for the next batch from `rx`: waits (indefinitely) for a first request, then
/// coalesces up to `cfg.max_batch` requests or until `cfg.batch_deadline` after the
/// first. Returns `None` once the channel is disconnected *and* drained — the worker's
/// shutdown signal. A disconnect with requests already coalesced flushes them as a final
/// partial batch.
pub fn next_batch(rx: &Receiver<Request>, cfg: &BatcherConfig) -> Option<Vec<Request>> {
    let first = rx.recv().ok()?;
    let deadline = Instant::now() + cfg.batch_deadline;
    let mut batch = Vec::with_capacity(cfg.max_batch.min(64));
    batch.push(first);
    while batch.len() < cfg.max_batch {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(request) => batch.push(request),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
        }
    }
    Some(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_dlrm::sample::Sample;
    use std::sync::mpsc::sync_channel;
    use std::thread;

    fn request(tag: usize) -> Request {
        Request::new(Sample::new(vec![0.1], vec![vec![tag]], 1.0), 0.0)
    }

    #[test]
    fn coalesces_up_to_max_batch() {
        let (tx, rx) = sync_channel(64);
        for i in 0..10 {
            tx.send(request(i)).unwrap();
        }
        let cfg = BatcherConfig {
            max_batch: 4,
            batch_deadline: Duration::from_secs(5),
        };
        let batch = next_batch(&rx, &cfg).unwrap();
        assert_eq!(
            batch.len(),
            4,
            "full batch closes at max_batch, not deadline"
        );
        assert_eq!(batch[0].sample.sparse[0][0], 0);
        assert_eq!(batch[3].sample.sparse[0][0], 3);
        // The remaining 6 form the next batches.
        assert_eq!(next_batch(&rx, &cfg).unwrap().len(), 4);
        drop(tx);
        assert_eq!(
            next_batch(&rx, &cfg).unwrap().len(),
            2,
            "disconnect flushes the tail"
        );
        assert!(
            next_batch(&rx, &cfg).is_none(),
            "drained + disconnected ends the worker"
        );
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let (tx, rx) = sync_channel(8);
        tx.send(request(0)).unwrap();
        let cfg = BatcherConfig {
            max_batch: 1024,
            batch_deadline: Duration::from_millis(20),
        };
        let started = Instant::now();
        let batch = next_batch(&rx, &cfg).unwrap();
        let waited = started.elapsed();
        assert_eq!(batch.len(), 1, "deadline closes an underfull batch");
        assert!(
            waited >= Duration::from_millis(15),
            "must wait for the deadline, waited {waited:?}"
        );
        drop(tx);
    }

    #[test]
    fn stragglers_within_deadline_join_the_batch() {
        let (tx, rx) = sync_channel(8);
        tx.send(request(0)).unwrap();
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            tx.send(request(1)).unwrap();
            tx.send(request(2)).unwrap();
            // Hold the channel open past the batch deadline.
            thread::sleep(Duration::from_millis(100));
            drop(tx);
        });
        let cfg = BatcherConfig {
            max_batch: 3,
            batch_deadline: Duration::from_millis(500),
        };
        let batch = next_batch(&rx, &cfg).unwrap();
        assert_eq!(
            batch.len(),
            3,
            "stragglers arriving before the deadline coalesce"
        );
        sender.join().unwrap();
    }

    #[test]
    fn zero_deadline_degenerates_to_single_request_batches() {
        let (tx, rx) = sync_channel(8);
        tx.send(request(0)).unwrap();
        tx.send(request(1)).unwrap();
        let cfg = BatcherConfig {
            max_batch: 64,
            batch_deadline: Duration::ZERO,
        };
        assert_eq!(next_batch(&rx, &cfg).unwrap().len(), 1);
        assert_eq!(next_batch(&rx, &cfg).unwrap().len(), 1);
        drop(tx);
        assert!(next_batch(&rx, &cfg).is_none());
    }
}
