//! Pluggable update policies for the background updater thread.
//!
//! PR 3 hardwired the updater to a LiveUpdate-style loop (`online_update_round` →
//! publish). This module extracts that decision behind the [`UpdatePolicy`] trait so the
//! paper's whole strategy taxonomy ([`StrategyKind`]) runs on real threads: the updater
//! thread owns the authoritative [`ServingNode`], feeds every ingested batch to the
//! policy, and on each wall-clock cadence tick asks the policy to mutate the node —
//! publishing a fresh epoch-swapped snapshot whenever the policy says so.
//!
//! * [`LiveUpdatePolicy`] — the paper's system: inference-side LoRA rounds over the
//!   retention buffer, one publication per update block (near-zero overhead: no
//!   parameter shipment, only CPU-cycle stealing).
//! * [`DeltaUpdatePolicy`] — industry baseline: a shadow "training cluster" model learns
//!   from the ingested traffic and the node takes a **full-model** sync every tick — the
//!   timer-driven full-model epoch swap.
//! * [`QuickUpdatePolicy`] — state-of-the-art baseline: same shadow trainer, but only
//!   the top `fraction` of rows by parameter change is pulled per tick
//!   ([`ServingNode::partial_sync`]), with a periodic full sync to bound drift.
//!
//! `NoUpdate` is represented by running the updater with no policy at all (ingest-only,
//! the baseline arm of the interference measurement).

use liveupdate::engine::ServingNode;
use liveupdate::strategy::StrategyKind;
use liveupdate_dlrm::model::DlrmModel;
use liveupdate_dlrm::sample::MiniBatch;

/// What one cadence tick of a policy did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyTick {
    /// Update events performed in this block (training rounds or sync pulls).
    pub rounds: u64,
    /// Whether the runtime must publish a fresh snapshot of the node.
    pub publish: bool,
    /// Parameters shipped from a shadow trainer into the node (0 for local-training
    /// policies — that absence is the paper's core claim). Full-model syncs count every
    /// parameter (embeddings *and* MLPs); partial syncs count the pulled rows' values.
    pub params_pulled: u64,
}

/// A strategy for refreshing the authoritative [`ServingNode`] while it serves.
///
/// Implementations run entirely on the updater thread: `observe` sees every served batch
/// right after it enters the node's retention buffer, and `update_block` fires once per
/// configured wall-clock interval. The runtime publishes `node.snapshot()` through the
/// epoch swap whenever `update_block` returns `publish: true`, so a policy never touches
/// the publication machinery itself.
pub trait UpdatePolicy: Send {
    /// Short name for reports (matches [`StrategyKind::name`] where applicable).
    fn name(&self) -> String;

    /// Observe one ingested batch (already folded into the node's retention buffer).
    /// Parameter-shipping baselines train their shadow model here; the default is a
    /// no-op.
    fn observe(&mut self, time_minutes: f64, batch: &MiniBatch) {
        let _ = (time_minutes, batch);
    }

    /// One cadence tick on the authoritative node.
    fn update_block(&mut self, node: &mut ServingNode, now_minutes: f64) -> PolicyTick;
}

/// Train `model` on `batch` split into mini-batches of `batch_size` (the same chunking
/// rule the analytic experiment driver uses for its training cluster).
fn train_on(model: &mut DlrmModel, batch: &MiniBatch, batch_size: usize) {
    for chunk in batch.chunks(batch_size.max(1)) {
        if !chunk.is_empty() {
            model.train_batch(&chunk);
        }
    }
}

/// The paper's policy: LoRA rounds over the node's retention buffer, publish each block.
#[derive(Debug, Clone)]
pub struct LiveUpdatePolicy {
    /// `online_update_round` calls per publication.
    pub rounds_per_update: usize,
    /// Mini-batch size of each round.
    pub batch_size: usize,
}

impl UpdatePolicy for LiveUpdatePolicy {
    fn name(&self) -> String {
        StrategyKind::LiveUpdate.name()
    }

    fn update_block(&mut self, node: &mut ServingNode, now_minutes: f64) -> PolicyTick {
        let mut rounds = 0u64;
        for _ in 0..self.rounds_per_update {
            node.online_update_round(now_minutes, self.batch_size);
            rounds += 1;
        }
        PolicyTick {
            rounds,
            publish: true,
            params_pulled: 0,
        }
    }
}

/// Industry baseline on real threads: a shadow training model learns from ingested
/// traffic; every tick the node takes a full-model sync and a full snapshot is published.
#[derive(Debug, Clone)]
pub struct DeltaUpdatePolicy {
    training: DlrmModel,
    training_batch_size: usize,
}

impl DeltaUpdatePolicy {
    /// Start from `training` (normally a clone of the node's Day-1 checkpoint).
    #[must_use]
    pub fn new(training: DlrmModel, training_batch_size: usize) -> Self {
        Self {
            training,
            training_batch_size,
        }
    }
}

impl UpdatePolicy for DeltaUpdatePolicy {
    fn name(&self) -> String {
        StrategyKind::DeltaUpdate.name()
    }

    fn observe(&mut self, _time_minutes: f64, batch: &MiniBatch) {
        train_on(&mut self.training, batch, self.training_batch_size);
    }

    fn update_block(&mut self, node: &mut ServingNode, _now_minutes: f64) -> PolicyTick {
        // A full-model sync ships every parameter, dense layers included.
        let params = self.training.parameter_count() as u64;
        node.full_sync(self.training.clone());
        PolicyTick {
            rounds: 1,
            publish: true,
            params_pulled: params,
        }
    }
}

/// State-of-the-art baseline on real threads: shadow trainer plus partial-row pulls, with
/// a periodic full sync (every `full_sync_every` ticks) to bound drift.
#[derive(Debug, Clone)]
pub struct QuickUpdatePolicy {
    training: DlrmModel,
    training_batch_size: usize,
    fraction: f64,
    full_sync_every: usize,
    ticks: usize,
}

impl QuickUpdatePolicy {
    /// Start from `training` with the QuickUpdate transfer `fraction`; a full sync runs
    /// every `full_sync_every` ticks (0 disables full syncs).
    #[must_use]
    pub fn new(
        training: DlrmModel,
        training_batch_size: usize,
        fraction: f64,
        full_sync_every: usize,
    ) -> Self {
        Self {
            training,
            training_batch_size,
            fraction,
            full_sync_every,
            ticks: 0,
        }
    }
}

impl UpdatePolicy for QuickUpdatePolicy {
    fn name(&self) -> String {
        StrategyKind::QuickUpdate {
            fraction: self.fraction,
        }
        .name()
    }

    fn observe(&mut self, _time_minutes: f64, batch: &MiniBatch) {
        train_on(&mut self.training, batch, self.training_batch_size);
    }

    fn update_block(&mut self, node: &mut ServingNode, _now_minutes: f64) -> PolicyTick {
        self.ticks += 1;
        let params_pulled =
            if self.full_sync_every > 0 && self.ticks.is_multiple_of(self.full_sync_every) {
                node.full_sync(self.training.clone());
                self.training.parameter_count() as u64
            } else {
                let dim = self.training.config().embedding_dim as u64;
                node.partial_sync(&self.training, self.fraction) as u64 * dim
            };
        PolicyTick {
            rounds: 1,
            publish: true,
            params_pulled,
        }
    }
}

/// Map a [`StrategyKind`] onto the update policy that realises it on real threads.
/// `NoUpdate` maps to `None`: the updater runs ingest-only (the baseline interference
/// arm). `day1_model` seeds the shadow trainer of the parameter-shipping baselines.
#[must_use]
pub fn policy_for_strategy(
    strategy: StrategyKind,
    day1_model: &DlrmModel,
    rounds_per_update: usize,
    online_batch_size: usize,
    training_batch_size: usize,
    full_sync_every_ticks: usize,
) -> Option<Box<dyn UpdatePolicy>> {
    match strategy {
        StrategyKind::NoUpdate => None,
        StrategyKind::DeltaUpdate => Some(Box::new(DeltaUpdatePolicy::new(
            day1_model.clone(),
            training_batch_size,
        ))),
        StrategyKind::QuickUpdate { fraction } => Some(Box::new(QuickUpdatePolicy::new(
            day1_model.clone(),
            training_batch_size,
            fraction,
            full_sync_every_ticks,
        ))),
        StrategyKind::LiveUpdate | StrategyKind::LiveUpdateFixedRank { .. } => {
            Some(Box::new(LiveUpdatePolicy {
                rounds_per_update,
                batch_size: online_batch_size,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate::config::LiveUpdateConfig;
    use liveupdate_dlrm::model::DlrmConfig;
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn model(seed: u64) -> DlrmModel {
        DlrmModel::new(DlrmConfig::tiny(2, 120, 8), seed)
    }

    fn traffic(n: usize) -> MiniBatch {
        let mut w = SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 120,
            ..WorkloadConfig::default()
        });
        w.batch_at(0.0, n)
    }

    #[test]
    fn liveupdate_policy_trains_the_node_and_publishes() {
        let mut node = ServingNode::new(model(1), LiveUpdateConfig::default());
        node.serve_batch(0.0, &traffic(64));
        let mut policy = LiveUpdatePolicy {
            rounds_per_update: 2,
            batch_size: 32,
        };
        let tick = policy.update_block(&mut node, 1.0);
        assert_eq!(tick.rounds, 2);
        assert!(tick.publish);
        assert_eq!(tick.params_pulled, 0, "LiveUpdate ships no parameters");
        assert_eq!(node.steps(), 2);
    }

    #[test]
    fn delta_policy_replaces_the_whole_model() {
        let mut node = ServingNode::new(model(1), LiveUpdateConfig::default());
        let mut policy = DeltaUpdatePolicy::new(model(1), 32);
        let batch = traffic(96);
        policy.observe(0.0, &batch);
        let before = node.serving_model().table(0).row(0).to_vec();
        let tick = policy.update_block(&mut node, 1.0);
        assert!(tick.publish);
        // The whole model moves: embeddings *and* the dense layers.
        assert_eq!(tick.params_pulled, model(1).parameter_count() as u64);
        assert!(
            tick.params_pulled > 2 * 120 * 8,
            "must exceed the embedding rows alone"
        );
        // The shadow trainer learned, so a full sync moves parameters.
        assert_ne!(node.serving_model().table(0).row(0), &before[..]);
    }

    #[test]
    fn quick_policy_pulls_a_fraction_then_fully_syncs() {
        let mut node = ServingNode::new(model(1), LiveUpdateConfig::default());
        let mut policy = QuickUpdatePolicy::new(model(1), 32, 0.1, 2);
        policy.observe(0.0, &traffic(96));
        let first = policy.update_block(&mut node, 1.0);
        // 10 % of 120 rows per table, 2 tables, dim 8 values per row.
        assert_eq!(first.params_pulled, 24 * 8);
        let second = policy.update_block(&mut node, 2.0);
        assert_eq!(
            second.params_pulled,
            model(1).parameter_count() as u64,
            "every 2nd tick is a full sync"
        );
    }

    #[test]
    fn strategy_mapping_covers_the_taxonomy() {
        let m = model(3);
        assert!(policy_for_strategy(StrategyKind::NoUpdate, &m, 1, 32, 32, 4).is_none());
        let named = |s: StrategyKind| policy_for_strategy(s, &m, 1, 32, 32, 4).unwrap().name();
        assert_eq!(named(StrategyKind::LiveUpdate), "LiveUpdate");
        assert_eq!(named(StrategyKind::DeltaUpdate), "DeltaUpdate");
        assert_eq!(
            named(StrategyKind::QuickUpdate { fraction: 0.05 }),
            "QuickUpdate-5%"
        );
        assert_eq!(
            named(StrategyKind::LiveUpdateFixedRank { rank: 8 }),
            "LiveUpdate"
        );
    }
}
