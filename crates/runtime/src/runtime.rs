//! Thread orchestration: wiring queues, workers, the updater, and the epoch publisher.

use crate::config::{RuntimeConfig, UpdateMode};
use crate::epoch::EpochPublisher;
use crate::policy::{LiveUpdatePolicy, UpdatePolicy};
use crate::report::{RuntimeReport, UpdaterReport, WorkerReport};
use crate::request::{ReplyTo, Request};
use crate::router::Router;
use crate::telemetry::Telemetry;
use crate::updater::{run_updater, NodeCommand, UpdaterMsg, UpdaterParams};
use crate::worker::{run_sync_worker, run_worker};
use liveupdate::engine::ServingNode;
use liveupdate::snapshot::ServingSnapshot;
use liveupdate_dlrm::sample::Sample;
use liveupdate_obs::span::STAGE_ENQUEUED;
use liveupdate_obs::{HistogramSnapshot, SpanRecord, TraceContext, TraceKind, TraceSampler};
use liveupdate_sim::latency::LatencyRecorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Result of submitting one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The request entered its worker's queue.
    Accepted,
    /// The bounded queue was full; the request was shed (open-loop overload).
    Shed,
    /// The runtime is shutting down; the queue is closed.
    Closed,
}

/// A running multithreaded serving system.
///
/// `start` spawns `num_workers` inference threads (each behind its own bounded MPSC
/// queue) and — in `Background` mode — one updater thread that owns the authoritative
/// [`ServingNode`]. Requests are submitted via [`Self::submit`]/[`Self::try_submit`] or
/// by the open-loop generator in [`crate::loadgen`]. [`Self::finish`] closes the queues,
/// joins every thread, and returns the measured [`RuntimeReport`] together with the
/// final node state.
#[derive(Debug)]
pub struct ServingRuntime {
    cfg: RuntimeConfig,
    publisher: Arc<EpochPublisher<ServingSnapshot>>,
    router: Router,
    senders: Vec<SyncSender<Request>>,
    workers: Vec<JoinHandle<WorkerReport>>,
    sync_worker: Option<JoinHandle<(WorkerReport, UpdaterReport, ServingNode)>>,
    updater: Option<JoinHandle<(UpdaterReport, ServingNode)>>,
    /// Command path into the updater thread (None in synchronous mode).
    node_tx: Option<Sender<UpdaterMsg>>,
    /// Shared metric handles (None when `cfg.telemetry` is off).
    telemetry: Option<Arc<Telemetry>>,
    /// The deterministic trace sampler (from `cfg.trace_sample_rate`).
    sampler: TraceSampler,
    /// Trace-id allocator for requests submitted without a wire-carried trace id.
    trace_seq: AtomicU64,
    processed: Arc<AtomicU64>,
    submitted: AtomicU64,
    dropped: AtomicU64,
    started: Instant,
}

impl ServingRuntime {
    /// Start the runtime serving `node`'s current state. The update arrangement comes
    /// from `cfg.update`: `Background` runs the LiveUpdate policy on the updater thread,
    /// `Disabled` runs ingest-only, `Synchronous` is the deterministic single-threaded
    /// reference mode. To run a *different* update strategy on the updater thread (the
    /// paper's QuickUpdate / DeltaUpdate baselines under real contention), use
    /// [`Self::start_with_policy`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn start(node: ServingNode, cfg: RuntimeConfig) -> Self {
        match cfg.update {
            UpdateMode::Synchronous { .. } | UpdateMode::Disabled => Self::spawn(node, cfg, None),
            UpdateMode::Background {
                interval,
                rounds_per_update,
                batch_size,
            } => {
                let policy = LiveUpdatePolicy {
                    rounds_per_update,
                    batch_size,
                };
                Self::spawn(
                    node,
                    cfg,
                    Some((interval, Some(Box::new(policy) as Box<dyn UpdatePolicy>))),
                )
            }
        }
    }

    /// Start the runtime with an explicit [`UpdatePolicy`] driving the updater thread at
    /// the given wall-clock `interval` (`policy == None` is ingest-only — the `NoUpdate`
    /// baseline). The worker topology (queues, batcher, routing) still comes from `cfg`;
    /// `cfg.update` is ignored except that `Synchronous` mode is rejected — synchronous
    /// runs have no separate updater thread to install a policy on.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cfg.update` is `Synchronous`.
    #[must_use]
    pub fn start_with_policy(
        node: ServingNode,
        cfg: RuntimeConfig,
        interval: Duration,
        policy: Option<Box<dyn UpdatePolicy>>,
    ) -> Self {
        assert!(
            !matches!(cfg.update, UpdateMode::Synchronous { .. }),
            "synchronous mode has no updater thread for a policy"
        );
        Self::spawn(node, cfg, Some((interval, policy)))
    }

    /// Spawn the thread topology. `background == None` runs `cfg.update`'s synchronous /
    /// disabled arrangement; `Some((interval, policy))` runs the policy-driven updater.
    fn spawn(
        node: ServingNode,
        cfg: RuntimeConfig,
        background: Option<(Duration, Option<Box<dyn UpdatePolicy>>)>,
    ) -> Self {
        if let Err(reason) = cfg.validate() {
            panic!("invalid runtime configuration: {reason}");
        }
        let publisher = EpochPublisher::new(node.snapshot());
        let initial_checksum = publisher.load().1.checksum();
        let telemetry = cfg.telemetry.then(|| Arc::new(Telemetry::new()));
        let processed = Arc::new(AtomicU64::new(0));
        let batcher = cfg.batcher();
        let router = Router::new(cfg.routing, cfg.num_workers);

        let mut senders = Vec::with_capacity(cfg.num_workers);
        let mut receivers = Vec::with_capacity(cfg.num_workers);
        for _ in 0..cfg.num_workers {
            let (tx, rx) = sync_channel::<Request>(cfg.queue_capacity);
            senders.push(tx);
            receivers.push(rx);
        }

        let mut workers = Vec::new();
        let mut sync_worker = None;
        let mut updater = None;
        let mut node_tx = None;
        match (cfg.update, background) {
            (
                UpdateMode::Synchronous {
                    every_batches,
                    rounds,
                    batch_size,
                },
                None,
            ) => {
                let rx = receivers.pop().expect("one worker in synchronous mode");
                let publisher_for_worker = Arc::clone(&publisher);
                let processed_for_worker = Arc::clone(&processed);
                let telemetry_for_worker = telemetry.clone();
                sync_worker = Some(
                    thread::Builder::new()
                        .name("lu-sync-worker".into())
                        .spawn(move || {
                            run_sync_worker(
                                &rx,
                                &batcher,
                                node,
                                &publisher_for_worker,
                                every_batches,
                                rounds,
                                batch_size,
                                &processed_for_worker,
                                telemetry_for_worker.as_deref(),
                            )
                        })
                        .expect("spawn sync worker"),
                );
            }
            (_, background) => {
                // Ingest-only (Disabled / NoUpdate) or a policy-driven background updater.
                let (interval, policy) = background.unwrap_or((Duration::from_secs(3600), None));
                let (ingest_tx, ingest_rx) = channel::<UpdaterMsg>();
                for (index, rx) in receivers.into_iter().enumerate() {
                    let reader = publisher.reader();
                    let worker_ingest = ingest_tx.clone();
                    let processed_for_worker = Arc::clone(&processed);
                    let telemetry_for_worker = telemetry.clone();
                    workers.push(
                        thread::Builder::new()
                            .name(format!("lu-worker-{index}"))
                            .spawn(move || {
                                run_worker(
                                    &rx,
                                    &batcher,
                                    reader,
                                    &worker_ingest,
                                    &processed_for_worker,
                                    telemetry_for_worker.as_deref(),
                                )
                            })
                            .expect("spawn worker"),
                    );
                }
                // The workers and the runtime's command handle hold the senders; the
                // updater shuts down when the workers have exited AND the runtime
                // dropped its handle in `finish`.
                node_tx = Some(ingest_tx);
                let params = UpdaterParams { interval, policy };
                let publisher_for_updater = Arc::clone(&publisher);
                let telemetry_for_updater = telemetry.clone();
                updater = Some(
                    thread::Builder::new()
                        .name("lu-updater".into())
                        .spawn(move || {
                            run_updater(
                                &ingest_rx,
                                node,
                                &publisher_for_updater,
                                params,
                                initial_checksum,
                                telemetry_for_updater.as_deref(),
                            )
                        })
                        .expect("spawn updater"),
                );
            }
        }

        let sampler = TraceSampler::new(cfg.trace_sample_rate);
        Self {
            cfg,
            publisher,
            router,
            senders,
            workers,
            sync_worker,
            updater,
            node_tx,
            telemetry,
            sampler,
            trace_seq: AtomicU64::new(0),
            processed,
            submitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Number of worker threads (and request queues).
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.cfg.num_workers
    }

    /// The epoch publisher (for observing the current epoch / snapshot from outside).
    #[must_use]
    pub fn publisher(&self) -> &Arc<EpochPublisher<ServingSnapshot>> {
        &self.publisher
    }

    /// The runtime's telemetry handles, or `None` when started with
    /// `cfg.telemetry == false`. Transport tiers use this to fold their own series
    /// (e.g. `net_open_connections`) into the same registry a scrape reads.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Refresh the scrape-time gauges and return the full flattened metrics snapshot
    /// (`[(name, value)]`, sorted by name) — the payload of a `Frame::StatsReply` and
    /// of [`RuntimeReport::telemetry`](crate::report::RuntimeReport). Empty when
    /// telemetry is off. Never blocks serving: gauge refresh is a handful of relaxed
    /// stores plus one brief epoch-slot lock (the same cost as an epoch adoption), and
    /// the registry walk reads atomics shard by shard.
    #[must_use]
    pub fn scrape(&self) -> Vec<(String, f64)> {
        let Some(tel) = &self.telemetry else {
            return Vec::new();
        };
        self.refresh_gauges(tel);
        tel.registry.snapshot()
    }

    /// Compute the sampled gauges: snapshot freshness (`epoch_age_us`), queue depth,
    /// and the cumulative per-table hot-row-cache tallies of the live snapshot.
    fn refresh_gauges(&self, tel: &Telemetry) {
        tel.epoch_age_us
            .set(i64::try_from(self.publisher.publish_age_us()).unwrap_or(i64::MAX));
        tel.snapshot_epoch
            .set(i64::try_from(self.publisher.epoch()).unwrap_or(i64::MAX));
        let submitted = self.submitted.load(Ordering::Relaxed);
        let completed = self.processed.load(Ordering::Acquire);
        tel.queue_depth
            .set(i64::try_from(submitted.saturating_sub(completed)).unwrap_or(i64::MAX));
        let (_, snapshot) = self.publisher.load();
        let hot = snapshot.hot_rows();
        for t in 0..hot.stats_tables() {
            if let Some(stats) = hot.table_stats(t) {
                let (hits, misses) = stats.get();
                tel.registry
                    .gauge(&format!("hot_row_cache_hits_t{t}"))
                    .set(i64::try_from(hits).unwrap_or(i64::MAX));
                tel.registry
                    .gauge(&format!("hot_row_cache_misses_t{t}"))
                    .set(i64::try_from(misses).unwrap_or(i64::MAX));
            }
        }
    }

    /// Requests fully served so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Acquire)
    }

    /// Block (with a 1 ms poll) until `count` requests have been served or `timeout`
    /// elapses; returns whether the target was reached.
    #[must_use]
    pub fn wait_processed(&self, count: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.processed() < count {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Run a closure against the authoritative [`ServingNode`] on the updater thread and
    /// return its result. The closure serialises with ingest and update blocks (it runs
    /// between them, never concurrently), which is how a transport tier applies sparse
    /// LoRA merges and parameter pulls without adding a single lock to the serve path.
    /// Blocks the caller until the closure has run.
    ///
    /// # Panics
    ///
    /// Panics in `Synchronous` mode (no updater thread owns the node there) or if the
    /// updater thread is gone.
    pub fn with_node<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut ServingNode) -> R + Send + 'static,
    {
        self.node_call(f, false)
    }

    /// [`Self::with_node`] followed by an epoch-swap publication of the node's fresh
    /// snapshot (recorded in the updater's publication history). Use this when the
    /// closure changed serving-visible state — e.g. after importing merged LoRA rows or
    /// a parameter shipment — so workers adopt the change on their next batch.
    ///
    /// # Panics
    ///
    /// Panics in `Synchronous` mode or if the updater thread is gone.
    pub fn with_node_publish<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut ServingNode) -> R + Send + 'static,
    {
        self.node_call(f, true)
    }

    /// Nonblocking node access: enqueue `f` to run against the authoritative
    /// [`ServingNode`] on the updater thread (serialised with ingest and update blocks
    /// exactly like [`Self::with_node`]), optionally publish a fresh epoch-swapped
    /// snapshot, and then invoke `done` with `f`'s result — *after* the publication, so
    /// a transport tier that acknowledges from `done` never acks an update the serve
    /// path cannot see yet. The caller is not blocked; `done` runs on the updater
    /// thread and must be cheap (hand the value to a channel, ring a waker).
    ///
    /// Returns `false` if no updater thread is available to run the command
    /// (synchronous mode, or the updater already shut down); `f` and `done` are dropped
    /// unrun in that case.
    pub fn with_node_async<R, F, G>(&self, f: F, publish: bool, done: G) -> bool
    where
        R: Send + 'static,
        F: FnOnce(&mut ServingNode) -> R + Send + 'static,
        G: FnOnce(R) + Send + 'static,
    {
        let Some(tx) = self.node_tx.as_ref() else {
            return false;
        };
        // The result crosses from `run` to `done` through a slot both closures share;
        // the updater runs them in order on one thread, so the slot is always filled.
        let slot: Arc<std::sync::Mutex<Option<R>>> = Arc::new(std::sync::Mutex::new(None));
        let fill = Arc::clone(&slot);
        let command = NodeCommand {
            run: Box::new(move |node| {
                *fill.lock().expect("result slot") = Some(f(node));
            }),
            publish,
            done: Box::new(move || {
                let result = slot.lock().expect("result slot").take();
                done(result.expect("command ran before completion"));
            }),
        };
        tx.send(UpdaterMsg::Command(command)).is_ok()
    }

    fn node_call<R, F>(&self, f: F, publish: bool) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut ServingNode) -> R + Send + 'static,
    {
        assert!(
            self.node_tx.is_some(),
            "node access requires a background updater (not Synchronous mode)"
        );
        let (result_tx, result_rx) = channel::<R>();
        let sent = self.with_node_async(f, publish, move |result| {
            let _ = result_tx.send(result);
        });
        assert!(sent, "updater thread alive");
        result_rx.recv().expect("updater executed the command")
    }

    /// Blocking submit (backpressure instead of shedding): used by deterministic test
    /// drivers. Returns `false` if the worker's queue is closed.
    pub fn submit(&self, worker: usize, sample: Sample, time_minutes: f64) -> bool {
        self.senders[worker]
            .send(Request::new(sample, time_minutes))
            .is_ok_and(|()| {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                true
            })
    }

    /// Non-blocking submit with an explicit scheduled-arrival stamp: the open-loop
    /// generator's entry point. A full queue sheds the request.
    pub fn submit_scheduled(
        &self,
        worker: usize,
        sample: Sample,
        time_minutes: f64,
        scheduled: Instant,
    ) -> SubmitOutcome {
        let trace = self.next_trace();
        self.submit_request(
            worker,
            Request {
                sample,
                time_minutes,
                submitted: scheduled,
                reply: None,
                trace,
            },
        )
    }

    /// Allocate a local trace id and open a span for it if the sampler keeps it.
    /// `None` (no tracing, no cost beyond one branch) when telemetry is off, the
    /// sample rate is 0, or this id lost the hash draw.
    fn next_trace(&self) -> Option<TraceContext> {
        if self.sampler.rate() <= 0.0 {
            return None;
        }
        let tel = self.telemetry.as_ref()?;
        let trace_id = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.sampler
            .decide(trace_id)
            .then(|| tel.spans.context(trace_id, 0))
    }

    /// Open a span for a trace id that arrived from elsewhere (the wire): the
    /// transport tier calls this with the driver's trace id and parent span id, and
    /// the deterministic sampler reaches the same keep/drop verdict the driver did.
    /// `None` when telemetry is off or the id is not sampled.
    #[must_use]
    pub fn trace_context(&self, trace_id: u64, parent_span_id: u64) -> Option<TraceContext> {
        if self.sampler.rate() <= 0.0 || trace_id == 0 {
            return None;
        }
        let tel = self.telemetry.as_ref()?;
        self.sampler
            .decide(trace_id)
            .then(|| tel.spans.context(trace_id, parent_span_id))
    }

    /// Drain every completed span (request spans and updater publication spans)
    /// collected since the previous drain. Empty when telemetry is off.
    #[must_use]
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.telemetry
            .as_ref()
            .map(|tel| tel.spans.drain())
            .unwrap_or_default()
    }

    /// Snapshot every registered histogram in mergeable (bucket-count) form — what
    /// `Frame::TraceDumpReply` ships so a cluster scraper can compute true merged
    /// P50/P99 across replicas. Empty when telemetry is off.
    #[must_use]
    pub fn scrape_histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.telemetry
            .as_ref()
            .map(|tel| tel.registry.histograms())
            .unwrap_or_default()
    }

    fn submit_request(&self, worker: usize, request: Request) -> SubmitOutcome {
        if let Some(trace) = &request.trace {
            trace.stamp(STAGE_ENQUEUED);
        }
        match self.senders[worker].try_send(request) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Accepted
            }
            Err(TrySendError::Full(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = &self.telemetry {
                    tel.requests_shed.inc();
                    tel.trace.push(TraceKind::Shed, worker as u64, 0);
                }
                SubmitOutcome::Shed
            }
            Err(TrySendError::Disconnected(_)) => SubmitOutcome::Closed,
        }
    }

    /// Non-blocking submit stamped "now".
    pub fn try_submit(&self, worker: usize, sample: Sample, time_minutes: f64) -> SubmitOutcome {
        self.submit_scheduled(worker, sample, time_minutes, Instant::now())
    }

    /// The runtime's request router (policy from [`RuntimeConfig::routing`]).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Blocking submit routed by the runtime's [`Router`] — hash-by-user keys the queue
    /// choice off the sample's user IDs, so callers never pick a worker index by hand.
    /// Returns `false` if the routed worker's queue is closed.
    pub fn submit_routed(&self, sample: Sample, time_minutes: f64) -> bool {
        let worker = self.router.route(&sample);
        self.submit(worker, sample, time_minutes)
    }

    /// Non-blocking routed submit with an explicit scheduled-arrival stamp (the open-loop
    /// generator's routed entry point). A full queue sheds the request.
    pub fn submit_routed_scheduled(
        &self,
        sample: Sample,
        time_minutes: f64,
        scheduled: Instant,
    ) -> SubmitOutcome {
        let worker = self.router.route(&sample);
        self.submit_scheduled(worker, sample, time_minutes, scheduled)
    }

    /// Routed non-blocking submit carrying a [`ReplyTo`] — the serving worker delivers
    /// the prediction through it right after the batch is served. A shed request drops
    /// the reply path unused (the transport tier reports the shed itself). The request
    /// is traced under a locally allocated trace id when the sampler keeps it.
    pub fn submit_routed_with_reply(
        &self,
        sample: Sample,
        time_minutes: f64,
        scheduled: Instant,
        reply: ReplyTo,
    ) -> SubmitOutcome {
        let trace = self.next_trace();
        self.submit_routed_with_reply_traced(sample, time_minutes, scheduled, reply, trace)
    }

    /// Like [`Self::submit_routed_with_reply`] but with an explicit (possibly absent)
    /// span, e.g. one opened by [`Self::trace_context`] from wire-carried trace ids.
    pub fn submit_routed_with_reply_traced(
        &self,
        sample: Sample,
        time_minutes: f64,
        scheduled: Instant,
        reply: ReplyTo,
        trace: Option<TraceContext>,
    ) -> SubmitOutcome {
        let worker = self.router.route(&sample);
        self.submit_request(
            worker,
            Request {
                sample,
                time_minutes,
                submitted: scheduled,
                reply: Some(reply),
                trace,
            },
        )
    }

    /// Non-blocking routed submit stamped "now".
    pub fn try_submit_routed(&self, sample: Sample, time_minutes: f64) -> SubmitOutcome {
        self.submit_routed_scheduled(sample, time_minutes, Instant::now())
    }

    /// Close the queues, join every thread, and assemble the measured report plus the
    /// final authoritative node (reflecting all ingested traffic and update rounds).
    ///
    /// # Panics
    ///
    /// Panics if a runtime thread panicked.
    #[must_use]
    pub fn finish(mut self) -> (RuntimeReport, ServingNode) {
        // Dropping the request senders disconnects the worker queues; workers drain and
        // exit, their ingest senders drop, and — once the runtime's own command handle
        // is gone too — the updater follows.
        self.senders.clear();
        drop(self.node_tx.take());
        let mut per_worker: Vec<WorkerReport> = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let (updater_report, node) = if let Some(handle) = self.sync_worker.take() {
            let (worker_report, updater_report, node) =
                handle.join().expect("sync worker panicked");
            per_worker.push(worker_report);
            (updater_report, node)
        } else {
            let handle = self.updater.take().expect("background updater present");
            handle.join().expect("updater thread panicked")
        };
        let wall_seconds = self.started.elapsed().as_secs_f64();

        let mut latency = LatencyRecorder::new();
        let mut completed = 0u64;
        let mut batches = 0u64;
        let mut corrected = 0u64;
        let mut refreshes = 0u64;
        for w in &per_worker {
            latency.merge(&w.latency);
            completed += w.served;
            batches += w.batches;
            corrected += w.lora_corrected_lookups;
            refreshes += w.snapshot_refreshes;
        }
        // The final registry snapshot, after every thread folded its last values in.
        let telemetry = self.scrape();
        let report = RuntimeReport {
            num_workers: self.cfg.num_workers,
            wall_seconds,
            submitted: self.submitted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            completed,
            qps: if wall_seconds > 0.0 {
                completed as f64 / wall_seconds
            } else {
                0.0
            },
            latency,
            batches,
            lora_corrected_lookups: corrected,
            snapshot_refreshes: refreshes,
            updater: updater_report,
            telemetry,
            per_worker,
        };
        (report, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate::config::LiveUpdateConfig;
    use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn tiny_node(seed: u64) -> ServingNode {
        let model = DlrmModel::new(DlrmConfig::tiny(2, 200, 8), seed);
        ServingNode::new(model, LiveUpdateConfig::default())
    }

    fn tiny_workload() -> SyntheticWorkload {
        SyntheticWorkload::new(WorkloadConfig {
            num_tables: 2,
            table_size: 200,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn serves_submitted_requests_and_reports() {
        let runtime = ServingRuntime::start(
            tiny_node(3),
            RuntimeConfig {
                num_workers: 2,
                max_batch: 8,
                batch_deadline_us: 500,
                update: UpdateMode::Disabled,
                ..RuntimeConfig::default()
            },
        );
        let mut w = tiny_workload();
        let batch = w.batch_at(0.0, 64);
        for (i, sample) in batch.iter().enumerate() {
            assert!(runtime.submit(i % 2, sample.clone(), 0.0));
        }
        assert!(
            runtime.wait_processed(64, Duration::from_secs(20)),
            "all requests must complete"
        );
        let (report, node) = runtime.finish();
        assert_eq!(report.completed, 64);
        assert_eq!(report.submitted, 64);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.latency.len(), 64);
        assert!(
            report.batches >= 8,
            "64 requests at max_batch 8 need >= 8 batches"
        );
        assert!(report.qps > 0.0);
        assert_eq!(report.num_workers, 2);
        assert_eq!(report.per_worker.len(), 2);
        // Disabled mode: no training, but all served traffic was ingested.
        assert_eq!(report.updater.update_rounds, 0);
        assert_eq!(report.updater.publications, 0);
        assert_eq!(report.updater.ingested_requests, 64);
        assert_eq!(node.buffered_records(), 64);
        assert_eq!(node.steps(), 0);
    }

    #[test]
    fn background_updater_trains_and_publishes() {
        let mut node = tiny_node(5);
        let mut w = tiny_workload();
        // Pre-fill the retention buffer so the first update round has data.
        node.serve_batch(0.0, &w.batch_at(0.0, 96));
        let initial_epoch_checksum = node.snapshot().checksum();
        let runtime = ServingRuntime::start(
            node,
            RuntimeConfig {
                num_workers: 2,
                max_batch: 16,
                batch_deadline_us: 200,
                update: UpdateMode::Background {
                    interval: Duration::from_millis(10),
                    rounds_per_update: 1,
                    batch_size: 32,
                },
                ..RuntimeConfig::default()
            },
        );
        let traffic = w.batch_at(1.0, 32);
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut sent = 0u64;
        // Keep a trickle of traffic flowing until at least 3 epochs have been published.
        while runtime.publisher().epoch() < 3 {
            assert!(Instant::now() < deadline, "updater must publish within 30s");
            for (i, sample) in traffic.iter().enumerate() {
                let _ = runtime.try_submit(i % 2, sample.clone(), 1.0);
                sent += 1;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(sent > 0);
        let (report, node) = runtime.finish();
        assert!(report.updater.publications >= 3);
        assert_eq!(report.updater.update_rounds, report.updater.publications);
        assert!(node.steps() >= 3, "authoritative node trained");
        // The published history starts at epoch 0 with the initial snapshot.
        assert_eq!(report.updater.published[0], (0, initial_epoch_checksum));
        // Epochs are consecutive from 0.
        for (i, &(epoch, _)) in report.updater.published.iter().enumerate() {
            assert_eq!(epoch, i as u64);
        }
        // Workers adopted at least one publication between them.
        assert!(
            report.snapshot_refreshes >= 1,
            "a worker should have observed a new epoch"
        );
    }

    #[test]
    fn shedding_kicks_in_when_queues_are_full() {
        // One worker, capacity 4, and a deadline long enough that the first batch keeps
        // the worker busy while we flood the queue.
        let runtime = ServingRuntime::start(
            tiny_node(7),
            RuntimeConfig {
                num_workers: 1,
                queue_capacity: 4,
                max_batch: 4,
                batch_deadline_us: 50_000,
                update: UpdateMode::Disabled,
                ..RuntimeConfig::default()
            },
        );
        let mut w = tiny_workload();
        let batch = w.batch_at(0.0, 64);
        let mut shed = 0;
        for sample in batch.iter() {
            if runtime.try_submit(0, sample.clone(), 0.0) == SubmitOutcome::Shed {
                shed += 1;
            }
        }
        assert!(
            shed > 0,
            "a capacity-4 queue cannot absorb 64 instant arrivals"
        );
        let (report, _) = runtime.finish();
        assert_eq!(report.dropped, shed);
        assert_eq!(report.completed + report.dropped, 64);
    }

    #[test]
    fn with_node_accesses_and_publishes() {
        let runtime = ServingRuntime::start(
            tiny_node(9),
            RuntimeConfig {
                num_workers: 1,
                update: UpdateMode::Disabled,
                ..RuntimeConfig::default()
            },
        );
        // Read-only access returns a value without bumping the epoch.
        let steps = runtime.with_node(|node| node.steps());
        assert_eq!(steps, 0);
        assert_eq!(runtime.publisher().epoch(), 0);
        // A publishing access mutates serving-visible state and swaps a fresh epoch.
        let before = runtime.publisher().load().1.checksum();
        runtime.with_node_publish(|node| {
            node.import_lora_row(0, 3, vec![1.0; node.loras()[0].rank()]);
        });
        assert_eq!(runtime.publisher().epoch(), 1);
        let after = runtime.publisher().load().1.checksum();
        assert_ne!(before, after, "the published snapshot reflects the import");
        let (report, node) = runtime.finish();
        assert_eq!(report.updater.publications, 1);
        assert_eq!(
            report.updater.published.len(),
            2,
            "initial + command publication"
        );
        assert!(node.loras()[0].is_active(3));
    }

    #[test]
    fn submit_with_reply_delivers_predictions() {
        let runtime = ServingRuntime::start(
            tiny_node(11),
            RuntimeConfig {
                num_workers: 2,
                max_batch: 8,
                batch_deadline_us: 500,
                update: UpdateMode::Disabled,
                ..RuntimeConfig::default()
            },
        );
        let mut w = tiny_workload();
        let batch = w.batch_at(0.0, 32);
        let (tx, rx) = std::sync::mpsc::channel::<f64>();
        for sample in batch.iter() {
            let tx = tx.clone();
            let reply = crate::request::ReplyTo::new(move |p| {
                let _ = tx.send(p);
            });
            let _ = runtime.submit_routed_with_reply(sample.clone(), 0.0, Instant::now(), reply);
        }
        drop(tx);
        let predictions: Vec<f64> = rx.into_iter().collect();
        let (report, node) = runtime.finish();
        assert_eq!(predictions.len() as u64, report.completed);
        assert!(predictions.iter().all(|p| (0.0..=1.0).contains(p)));
        // Replies come from the same snapshot the workers served.
        let snap = node.snapshot();
        let expected: Vec<f64> = batch.iter().map(|s| snap.predict(s)).collect();
        for p in &predictions {
            assert!(expected.iter().any(|e| (e - p).abs() < 1e-12));
        }
    }

    #[test]
    fn with_node_async_completes_after_publication() {
        let runtime = ServingRuntime::start(
            tiny_node(13),
            RuntimeConfig {
                num_workers: 1,
                update: UpdateMode::Disabled,
                ..RuntimeConfig::default()
            },
        );
        let publisher = Arc::clone(runtime.publisher());
        let (tx, rx) = std::sync::mpsc::channel::<(usize, u64)>();
        let sent = runtime.with_node_async(
            |node| {
                node.import_lora_row(0, 3, vec![1.0; node.loras()[0].rank()]);
                node.loras()[0].active_rows()
            },
            true,
            move |active| {
                // `done` runs after the epoch swap: the publication is already visible.
                let _ = tx.send((active, publisher.epoch()));
            },
        );
        assert!(sent, "background updater accepts async commands");
        let (active, epoch_at_done) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(active, 1);
        assert_eq!(epoch_at_done, 1, "completion observes the published epoch");
        let (report, node) = runtime.finish();
        assert_eq!(report.updater.publications, 1);
        assert!(node.loras()[0].is_active(3));
    }

    #[test]
    #[should_panic(expected = "invalid runtime configuration")]
    fn invalid_config_is_rejected() {
        let cfg = RuntimeConfig {
            num_workers: 0,
            ..RuntimeConfig::default()
        };
        let _ = ServingRuntime::start(tiny_node(1), cfg);
    }
}
