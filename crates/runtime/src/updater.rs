//! The background updater thread — the paper's co-located trainer (Fig. 7).
//!
//! The updater owns the *authoritative* [`ServingNode`]: the only mutable model state in
//! the whole runtime. It drains served traffic from the ingest channel into the node's
//! retention buffer and, on a wall-clock cadence, runs `online_update_round` on that
//! shadow state and publishes the result as an immutable snapshot through the epoch
//! swap. Training therefore contends with serving only for CPU cycles — never for a
//! lock — which is exactly the "near-zero overhead" property the interference
//! measurement in `examples/live_serving.rs` quantifies.

use crate::epoch::EpochPublisher;
use crate::report::UpdaterReport;
use liveupdate::engine::ServingNode;
use liveupdate::snapshot::ServingSnapshot;
use liveupdate_dlrm::sample::MiniBatch;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One served batch handed from a worker to the updater.
#[derive(Debug)]
pub(crate) struct IngestBatch {
    /// Sim-time high-water mark of the batch's requests.
    pub time_minutes: f64,
    /// The served samples (labelled traffic for the retention buffer).
    pub batch: MiniBatch,
}

/// Training cadence of a background updater.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UpdaterParams {
    pub interval: Duration,
    pub rounds_per_update: usize,
    pub batch_size: usize,
}

/// Run the updater until every worker's ingest sender is gone. With `params == None`
/// (update mode `Disabled`) the thread only drains the channel — the baseline arm of the
/// interference experiment keeps the ingestion cost identical and removes only the
/// training + publication work.
pub(crate) fn run_updater(
    ingest_rx: &Receiver<IngestBatch>,
    mut node: ServingNode,
    publisher: &Arc<EpochPublisher<ServingSnapshot>>,
    params: Option<UpdaterParams>,
    initial_checksum: u64,
) -> (UpdaterReport, ServingNode) {
    let mut report = UpdaterReport::default();
    report.published.push((0, initial_checksum));
    let mut node_time = 0.0f64;
    let mut last_update = Instant::now();
    loop {
        // Sleep on the channel until the next training deadline (or forever when
        // training is disabled — the disconnect wakes us for shutdown).
        let timeout = match params {
            None => Duration::from_secs(3600),
            Some(p) => p.interval.saturating_sub(last_update.elapsed()),
        };
        match ingest_rx.recv_timeout(timeout) {
            Ok(ingest) => {
                node_time = node_time.max(ingest.time_minutes);
                report.ingested_batches += 1;
                report.ingested_requests += ingest.batch.len() as u64;
                node.ingest_batch(ingest.time_minutes, &ingest.batch);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(p) = params {
            if last_update.elapsed() >= p.interval {
                let round_started = Instant::now();
                for _ in 0..p.rounds_per_update {
                    node.online_update_round(node_time, p.batch_size);
                    report.update_rounds += 1;
                }
                let snapshot = node.snapshot();
                let checksum = snapshot.checksum();
                let epoch = publisher.publish(snapshot);
                report.publications += 1;
                report.published.push((epoch, checksum));
                report
                    .round_times_ms
                    .push(round_started.elapsed().as_secs_f64() * 1e3);
                last_update = Instant::now();
            }
        }
    }
    // Workers are gone; fold any traffic still queued into the buffer so the returned
    // node reflects everything that was served.
    while let Ok(ingest) = ingest_rx.try_recv() {
        report.ingested_batches += 1;
        report.ingested_requests += ingest.batch.len() as u64;
        node.ingest_batch(ingest.time_minutes, &ingest.batch);
    }
    (report, node)
}
