//! The background updater thread — the paper's co-located trainer (Fig. 7).
//!
//! The updater owns the *authoritative* [`ServingNode`]: the only mutable model state in
//! the whole runtime. It drains served traffic from the ingest channel into the node's
//! retention buffer (and into the active [`UpdatePolicy`]'s view) and, on a wall-clock
//! cadence, asks the policy for one update block on that shadow state — publishing the
//! result as an immutable snapshot through the epoch swap whenever the policy requests
//! it. Serving therefore contends with updating only for CPU cycles — never for a lock —
//! which is exactly the "near-zero overhead" property the interference measurement in
//! `examples/live_serving.rs` quantifies. With no policy installed (`NoUpdate` /
//! `UpdateMode::Disabled`) the thread only drains the channel: the baseline arm keeps
//! the ingestion cost identical and removes only the update + publication work.
//!
//! Besides ingest, the channel carries [`NodeCommand`]s — closures a transport tier
//! (e.g. the TCP replica server applying a sparse LoRA merge or a parameter pull) runs
//! against the authoritative node, optionally followed by an epoch-swap publication.
//! Commands execute on this thread, so they serialise naturally with update blocks and
//! never race the policy for the node.

use crate::epoch::EpochPublisher;
use crate::policy::UpdatePolicy;
use crate::report::UpdaterReport;
use crate::telemetry::Telemetry;
use liveupdate::engine::ServingNode;
use liveupdate::snapshot::ServingSnapshot;
use liveupdate_dlrm::sample::MiniBatch;
use liveupdate_obs::TraceKind;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One served batch handed from a worker to the updater.
#[derive(Debug)]
pub(crate) struct IngestBatch {
    /// Sim-time high-water mark of the batch's requests.
    pub time_minutes: f64,
    /// The served samples (labelled traffic for the retention buffer).
    pub batch: MiniBatch,
}

/// A closure to run against the authoritative node on the updater thread, with an
/// optional publication afterwards. `done` is invoked once the closure (and the
/// publication, when requested) has completed — a blocking caller signals itself
/// through a channel, a nonblocking one (the event-loop server) delivers the reply
/// frame from here.
pub(crate) struct NodeCommand {
    pub run: Box<dyn FnOnce(&mut ServingNode) + Send>,
    pub publish: bool,
    pub done: Box<dyn FnOnce() + Send>,
}

/// Everything that can arrive on the updater's channel.
pub(crate) enum UpdaterMsg {
    /// Served traffic from a worker.
    Ingest(IngestBatch),
    /// A node access request from [`crate::runtime::ServingRuntime::with_node`].
    Command(NodeCommand),
}

/// The updater arrangement: the wall-clock cadence plus the pluggable policy that runs
/// at each tick. `policy == None` is ingest-only (the `NoUpdate` baseline arm).
pub(crate) struct UpdaterParams {
    pub interval: Duration,
    pub policy: Option<Box<dyn UpdatePolicy>>,
}

/// Publish a fresh snapshot of `node` and record it in the report's history. With
/// telemetry on, the outgoing snapshot's hot-row-cache tallies are carried into the
/// fresh one first (so cache telemetry is cumulative across epochs), and the
/// publication lands in the counters and the trace ring.
fn publish_snapshot(
    node: &ServingNode,
    publisher: &Arc<EpochPublisher<ServingSnapshot>>,
    report: &mut UpdaterReport,
    telemetry: Option<&Telemetry>,
) {
    let span_started = telemetry.map(|tel| tel.spans.now_us());
    let mut snapshot = node.snapshot();
    if telemetry.is_some() {
        snapshot.adopt_cache_stats(&publisher.load().1);
    }
    let checksum = snapshot.checksum();
    let epoch = publisher.publish(snapshot);
    report.publications += 1;
    report.published.push((epoch, checksum));
    if let Some(tel) = telemetry {
        tel.publications.inc();
        tel.snapshot_epoch
            .set(i64::try_from(epoch).unwrap_or(i64::MAX));
        tel.trace.push(TraceKind::EpochPublish, epoch, checksum);
        // The publication's own span (snapshot + epoch swap), pulled by trace dumps
        // alongside request spans.
        crate::telemetry::push_publication_span(tel, epoch, span_started.unwrap_or_default());
    }
}

/// Run the updater until every ingest/command sender is gone.
pub(crate) fn run_updater(
    ingest_rx: &Receiver<UpdaterMsg>,
    mut node: ServingNode,
    publisher: &Arc<EpochPublisher<ServingSnapshot>>,
    mut params: UpdaterParams,
    initial_checksum: u64,
    telemetry: Option<&Telemetry>,
) -> (UpdaterReport, ServingNode) {
    let mut report = UpdaterReport::default();
    report.published.push((0, initial_checksum));
    let mut node_time = 0.0f64;
    let mut last_update = Instant::now();
    loop {
        // Sleep on the channel until the next update deadline (or effectively forever
        // when no policy is installed — the disconnect wakes us for shutdown, a command
        // wakes us for node access).
        let timeout = match params.policy {
            None => Duration::from_secs(3600),
            Some(_) => params.interval.saturating_sub(last_update.elapsed()),
        };
        match ingest_rx.recv_timeout(timeout) {
            Ok(UpdaterMsg::Ingest(ingest)) => {
                node_time = node_time.max(ingest.time_minutes);
                report.ingested_batches += 1;
                report.ingested_requests += ingest.batch.len() as u64;
                node.ingest_batch(ingest.time_minutes, &ingest.batch);
                if let Some(policy) = params.policy.as_mut() {
                    policy.observe(ingest.time_minutes, &ingest.batch);
                }
            }
            Ok(UpdaterMsg::Command(command)) => {
                (command.run)(&mut node);
                if command.publish {
                    publish_snapshot(&node, publisher, &mut report, telemetry);
                }
                (command.done)();
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some(policy) = params.policy.as_mut() {
            if last_update.elapsed() >= params.interval {
                let round_started = Instant::now();
                let tick = policy.update_block(&mut node, node_time);
                report.update_rounds += tick.rounds;
                report.params_pulled += tick.params_pulled;
                if tick.publish {
                    publish_snapshot(&node, publisher, &mut report, telemetry);
                }
                let round_ms = round_started.elapsed().as_secs_f64() * 1e3;
                report.round_times_ms.push(round_ms);
                if let Some(tel) = telemetry {
                    tel.update_rounds.add(tick.rounds);
                    tel.update_round_us.record(round_ms * 1e3);
                    tel.trace
                        .push(TraceKind::UpdateRound, tick.rounds, (round_ms * 1e3) as u64);
                }
                last_update = Instant::now();
            }
        }
    }
    // Workers are gone; fold any traffic still queued into the buffer so the returned
    // node reflects everything that was served. Stray commands are completed too so no
    // caller is left blocked.
    while let Ok(msg) = ingest_rx.try_recv() {
        match msg {
            UpdaterMsg::Ingest(ingest) => {
                report.ingested_batches += 1;
                report.ingested_requests += ingest.batch.len() as u64;
                node.ingest_batch(ingest.time_minutes, &ingest.batch);
            }
            UpdaterMsg::Command(command) => {
                (command.run)(&mut node);
                if command.publish {
                    publish_snapshot(&node, publisher, &mut report, telemetry);
                }
                (command.done)();
            }
        }
    }
    (report, node)
}
