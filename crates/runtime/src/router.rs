//! Request routing for the serving runtime.
//!
//! PR 3's `ServingRuntime::submit(worker, ...)` leaked the queue topology: every caller
//! picked the worker index by hand (`i % num_workers` in tests, a private sharder in the
//! load generator). [`Router`] closes that leak — submission is keyed by the request
//! itself, reusing the deterministic policies of [`liveupdate_workload::shard`]:
//! hash-by-user keeps one user's traffic on one worker (preserving per-queue Zipf skew),
//! round-robin balances to within one request. Unlike [`StreamSharder`] the router
//! routes from a **shared** reference (an atomic rotation cursor instead of `&mut
//! self`), so concurrent submitters need no lock.

use liveupdate_dlrm::sample::Sample;
use liveupdate_workload::shard::{ShardPolicy, StreamSharder};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Lock-free, deterministic request router over the runtime's worker queues.
#[derive(Debug)]
pub struct Router {
    policy: ShardPolicy,
    num_workers: usize,
    rotation: AtomicUsize,
}

impl Router {
    /// A router over `num_workers` queues.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    #[must_use]
    pub fn new(policy: ShardPolicy, num_workers: usize) -> Self {
        assert!(num_workers > 0, "at least one worker is required");
        Self {
            policy,
            num_workers,
            rotation: AtomicUsize::new(0),
        }
    }

    /// The routing policy.
    #[must_use]
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of worker queues routed over.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The worker queue `sample` is routed to. Hash-by-user is a pure function of the
    /// sample's user IDs; round-robin advances the shared rotation cursor.
    pub fn route(&self, sample: &Sample) -> usize {
        match self.policy {
            ShardPolicy::HashByUser => StreamSharder::hash_route(sample, self.num_workers),
            ShardPolicy::RoundRobin => {
                self.rotation.fetch_add(1, Ordering::Relaxed) % self.num_workers
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liveupdate_workload::{SyntheticWorkload, WorkloadConfig};

    fn batch(n: usize) -> liveupdate_dlrm::sample::MiniBatch {
        let mut w = SyntheticWorkload::new(WorkloadConfig::default());
        w.batch_at(0.0, n)
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Router::new(ShardPolicy::RoundRobin, 0);
    }

    #[test]
    fn hash_routing_matches_the_stream_sharder() {
        let b = batch(64);
        let router = Router::new(ShardPolicy::HashByUser, 4);
        let mut sharder = StreamSharder::new(ShardPolicy::HashByUser, 4);
        for sample in b.iter() {
            assert_eq!(router.route(sample), sharder.shard_of(sample));
        }
    }

    #[test]
    fn round_robin_balances_from_a_shared_reference() {
        let b = batch(12);
        let router = Router::new(ShardPolicy::RoundRobin, 3);
        let mut counts = [0usize; 3];
        for sample in b.iter() {
            counts[router.route(sample)] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
    }

    #[test]
    fn same_user_always_lands_on_the_same_worker() {
        let router = Router::new(ShardPolicy::HashByUser, 8);
        let mut sample = Sample::new(vec![0.0], vec![vec![42, 7], vec![3]], 0.0);
        let worker = router.route(&sample);
        sample.sparse[1] = vec![99];
        sample.dense[0] = 1.0;
        assert_eq!(router.route(&sample), worker);
    }
}
