//! Worker (inference) threads.
//!
//! A worker owns one bounded request queue. Its loop is: coalesce a batch (deadline
//! batcher), adopt the latest published snapshot (one atomic load on the fast path),
//! serve the batch read-only, record per-request latencies, and hand the served traffic
//! to the updater over the ingest channel. The worker never takes a lock that the
//! trainer holds — snapshot adoption is the epoch swap's `Arc` clone, and everything
//! else is thread-local.

use crate::batcher::{next_batch, BatcherConfig};
use crate::epoch::{EpochPublisher, EpochReader};
use crate::report::{UpdaterReport, WorkerReport};
use crate::request::{ReplyTo, Request};
use crate::updater::{IngestBatch, UpdaterMsg};
use liveupdate::engine::ServingNode;
use liveupdate::snapshot::ServingSnapshot;
use liveupdate_dlrm::sample::MiniBatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Split a closed batch into `(submit instants, reply paths, sim-time high-water mark,
/// mini-batch)`; the instants and replies stay index-aligned with the batch samples.
fn unpack(batch: Vec<Request>) -> (Vec<Instant>, Vec<Option<ReplyTo>>, f64, MiniBatch) {
    let mut submitted = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    let mut time_minutes = f64::NEG_INFINITY;
    let mut samples = Vec::with_capacity(batch.len());
    for request in batch {
        submitted.push(request.submitted);
        replies.push(request.reply);
        time_minutes = time_minutes.max(request.time_minutes);
        samples.push(request.sample);
    }
    (submitted, replies, time_minutes, MiniBatch::new(samples))
}

/// Serve one mini-batch from `snapshot`, fold the results into `report`, and deliver
/// each prediction to any submitter that attached a reply path.
fn serve_and_record(
    snapshot: &ServingSnapshot,
    mini_batch: &MiniBatch,
    submitted: &[Instant],
    replies: Vec<Option<ReplyTo>>,
    report: &mut WorkerReport,
) {
    let (serve, predictions) = snapshot.serve_batch_with_predictions(mini_batch);
    let completion = Instant::now();
    for &instant in submitted {
        report
            .latency
            .record(completion.saturating_duration_since(instant).as_secs_f64() * 1e3);
    }
    for (reply, &prediction) in replies.into_iter().zip(&predictions) {
        if let Some(reply) = reply {
            reply.complete(prediction);
        }
    }
    report.served += serve.requests as u64;
    report.batches += 1;
    report.lora_corrected_lookups += serve.lora_corrected_lookups as u64;
    report.prediction_sum += serve.mean_prediction * serve.requests as f64;
}

/// The standard worker loop (Background / Disabled update modes): serve from the
/// published snapshot, forward served traffic to the updater. Runs until the request
/// channel is disconnected and drained.
pub(crate) fn run_worker(
    rx: &Receiver<Request>,
    batcher: &BatcherConfig,
    mut reader: EpochReader<ServingSnapshot>,
    ingest_tx: &Sender<UpdaterMsg>,
    processed: &AtomicU64,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    while let Some(batch) = next_batch(rx, batcher) {
        reader.refresh();
        let (submitted, replies, time_minutes, mini_batch) = unpack(batch);
        serve_and_record(reader.get(), &mini_batch, &submitted, replies, &mut report);
        // The updater owns the mutable node; served traffic reaches its retention
        // buffer through this channel. If the updater is gone the run is shutting
        // down — serving continues, ingestion is simply dropped.
        let _ = ingest_tx.send(UpdaterMsg::Ingest(IngestBatch {
            time_minutes,
            batch: mini_batch,
        }));
        processed.fetch_add(submitted.len() as u64, Ordering::Release);
    }
    report.snapshot_refreshes = reader.refreshes();
    report.last_epoch = reader.epoch();
    report
}

/// The synchronous single-worker loop: the worker itself owns the authoritative node,
/// ingests inline, trains every `every_batches` batches, and publishes after each update
/// block. Deterministic given a deterministic request feed — the determinism-parity test
/// drives this mode against the plain `ServingNode` serve/update loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sync_worker(
    rx: &Receiver<Request>,
    batcher: &BatcherConfig,
    mut node: ServingNode,
    publisher: &Arc<EpochPublisher<ServingSnapshot>>,
    every_batches: usize,
    rounds: usize,
    batch_size: usize,
    processed: &AtomicU64,
) -> (WorkerReport, UpdaterReport, ServingNode) {
    let mut report = WorkerReport::default();
    let mut updater = UpdaterReport::default();
    let mut reader = publisher.reader();
    let mut batches_since_update = 0usize;
    while let Some(batch) = next_batch(rx, batcher) {
        reader.refresh();
        let (submitted, replies, time_minutes, mini_batch) = unpack(batch);
        serve_and_record(reader.get(), &mini_batch, &submitted, replies, &mut report);

        node.ingest_batch(time_minutes, &mini_batch);
        updater.ingested_batches += 1;
        updater.ingested_requests += mini_batch.len() as u64;

        batches_since_update += 1;
        if batches_since_update >= every_batches {
            batches_since_update = 0;
            let round_started = Instant::now();
            for _ in 0..rounds {
                node.online_update_round(time_minutes, batch_size);
                updater.update_rounds += 1;
            }
            let snapshot = node.snapshot();
            let checksum = snapshot.checksum();
            let epoch = publisher.publish(snapshot);
            updater.publications += 1;
            updater.published.push((epoch, checksum));
            updater
                .round_times_ms
                .push(round_started.elapsed().as_secs_f64() * 1e3);
        }
        processed.fetch_add(submitted.len() as u64, Ordering::Release);
    }
    report.snapshot_refreshes = reader.refreshes();
    report.last_epoch = reader.epoch();
    (report, updater, node)
}
