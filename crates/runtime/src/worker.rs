//! Worker (inference) threads.
//!
//! A worker owns one bounded request queue. Its loop is: coalesce a batch (deadline
//! batcher), adopt the latest published snapshot (one atomic load on the fast path),
//! serve the batch read-only, record per-request latencies, and hand the served traffic
//! to the updater over the ingest channel. The worker never takes a lock that the
//! trainer holds — snapshot adoption is the epoch swap's `Arc` clone, and everything
//! else is thread-local. Telemetry follows the same discipline: every instrumented
//! point is a relaxed atomic op on a pre-registered handle, and a runtime started with
//! `telemetry: false` skips even those behind one predictable branch.

use crate::batcher::{next_batch, BatcherConfig};
use crate::epoch::{EpochPublisher, EpochReader};
use crate::report::{UpdaterReport, WorkerReport};
use crate::request::{ReplyTo, Request};
use crate::telemetry::Telemetry;
use crate::updater::{IngestBatch, UpdaterMsg};
use liveupdate::engine::ServingNode;
use liveupdate::snapshot::ServingSnapshot;
use liveupdate_dlrm::sample::MiniBatch;
use liveupdate_obs::span::{
    STAGE_BATCH_CLOSED, STAGE_REPLY_FLUSHED, STAGE_SERVE_DONE, STAGE_SERVE_START,
};
use liveupdate_obs::{TraceContext, TraceKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A closed batch split into its index-aligned parts (instants, reply paths, trace
/// contexts all stay aligned with the mini-batch samples).
struct Unpacked {
    submitted: Vec<Instant>,
    replies: Vec<Option<ReplyTo>>,
    traces: Vec<Option<TraceContext>>,
    /// Sim-time high-water mark of the batch's requests.
    time_minutes: f64,
    mini_batch: MiniBatch,
}

/// Split a closed batch, stamping `batch_closed` on every traced request (the batcher
/// just closed the deadline window that held them).
fn unpack(batch: Vec<Request>) -> Unpacked {
    let mut submitted = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    let mut traces = Vec::with_capacity(batch.len());
    let mut time_minutes = f64::NEG_INFINITY;
    let mut samples = Vec::with_capacity(batch.len());
    for request in batch {
        if let Some(trace) = &request.trace {
            trace.stamp(STAGE_BATCH_CLOSED);
        }
        submitted.push(request.submitted);
        replies.push(request.reply);
        traces.push(request.trace);
        time_minutes = time_minutes.max(request.time_minutes);
        samples.push(request.sample);
    }
    Unpacked {
        submitted,
        replies,
        traces,
        time_minutes,
        mini_batch: MiniBatch::new(samples),
    }
}

/// Stamp `reply_flushed`, fold the span's stage gaps into the per-stage latency
/// histograms, and publish the completed span into the ring.
fn finish_span(trace: TraceContext, telemetry: Option<&Telemetry>) {
    trace.stamp(STAGE_REPLY_FLUSHED);
    if let Some(tel) = telemetry {
        let record = trace.record();
        for (i, hist) in tel.stage_us.iter().enumerate() {
            if let (Some(a), Some(b)) = (record.stage_us(i), record.stage_us(i + 1)) {
                hist.record(b.saturating_sub(a) as f64);
            }
        }
    }
    trace.finish();
}

/// Serve one mini-batch from `snapshot`, fold the results into `report`, deliver
/// each prediction to any submitter that attached a reply path, and finish each
/// traced request's span right after its reply is handed off.
fn serve_and_record(
    snapshot: &ServingSnapshot,
    mini_batch: &MiniBatch,
    submitted: &[Instant],
    replies: Vec<Option<ReplyTo>>,
    traces: Vec<Option<TraceContext>>,
    report: &mut WorkerReport,
    telemetry: Option<&Telemetry>,
) {
    for trace in traces.iter().flatten() {
        trace.stamp(STAGE_SERVE_START);
    }
    let (serve, predictions) = snapshot.serve_batch_with_predictions(mini_batch);
    let completion = Instant::now();
    for trace in traces.iter().flatten() {
        trace.stamp(STAGE_SERVE_DONE);
    }
    for &instant in submitted {
        let ms = completion.saturating_duration_since(instant).as_secs_f64() * 1e3;
        report.latency.record(ms);
        if let Some(tel) = telemetry {
            // The per-request hot-path cost of live telemetry: one relaxed increment.
            tel.serve_latency_us.record(ms * 1e3);
        }
    }
    for ((reply, trace), &prediction) in replies.into_iter().zip(traces).zip(&predictions) {
        if let Some(reply) = reply {
            reply.complete(prediction);
        }
        if let Some(trace) = trace {
            finish_span(trace, telemetry);
        }
    }
    report.served += serve.requests as u64;
    report.batches += 1;
    report.lora_corrected_lookups += serve.lora_corrected_lookups as u64;
    report.prediction_sum += serve.mean_prediction * serve.requests as f64;
}

/// Per-worker freshness accounting: requests served from the current epoch, and the
/// histograms they feed when the epoch moves.
struct EpochTally {
    requests_this_epoch: u64,
}

impl EpochTally {
    fn new() -> Self {
        Self {
            requests_this_epoch: 0,
        }
    }

    /// Call right after `reader.refresh()`: when a new snapshot was adopted, record
    /// the publication-to-first-serve lag and close out the previous epoch's request
    /// count.
    fn on_refresh(
        &mut self,
        adopted: bool,
        reader: &EpochReader<ServingSnapshot>,
        tel: &Telemetry,
    ) {
        if !adopted {
            return;
        }
        tel.publish_to_first_serve_us
            .record(reader.publish_age_us() as f64);
        if self.requests_this_epoch > 0 {
            tel.requests_per_epoch
                .record(self.requests_this_epoch as f64);
        }
        self.requests_this_epoch = 0;
    }

    /// Flush the final epoch's request count at worker exit.
    fn finish(&mut self, tel: &Telemetry) {
        if self.requests_this_epoch > 0 {
            tel.requests_per_epoch
                .record(self.requests_this_epoch as f64);
        }
    }
}

/// Record the per-batch serve metrics (occupancy, duration, counters, trace event).
fn record_batch(tel: &Telemetry, n: usize, serve_us: u64) {
    tel.batches_total.inc();
    tel.requests_total.add(n as u64);
    tel.batch_occupancy.record(n as f64);
    tel.serve_batch_us.record(serve_us as f64);
    tel.trace.push(TraceKind::BatchClose, n as u64, serve_us);
}

/// The standard worker loop (Background / Disabled update modes): serve from the
/// published snapshot, forward served traffic to the updater. Runs until the request
/// channel is disconnected and drained.
pub(crate) fn run_worker(
    rx: &Receiver<Request>,
    batcher: &BatcherConfig,
    mut reader: EpochReader<ServingSnapshot>,
    ingest_tx: &Sender<UpdaterMsg>,
    processed: &AtomicU64,
    telemetry: Option<&Telemetry>,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut tally = EpochTally::new();
    while let Some(batch) = next_batch(rx, batcher) {
        let adopted = reader.refresh();
        if let Some(tel) = telemetry {
            tally.on_refresh(adopted, &reader, tel);
        }
        let Unpacked {
            submitted,
            replies,
            traces,
            time_minutes,
            mini_batch,
        } = unpack(batch);
        let n = mini_batch.len();
        let serve_started = Instant::now();
        serve_and_record(
            reader.get(),
            &mini_batch,
            &submitted,
            replies,
            traces,
            &mut report,
            telemetry,
        );
        if let Some(tel) = telemetry {
            let serve_us = u64::try_from(serve_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            record_batch(tel, n, serve_us);
            tally.requests_this_epoch += n as u64;
        }
        // The updater owns the mutable node; served traffic reaches its retention
        // buffer through this channel. If the updater is gone the run is shutting
        // down — serving continues, ingestion is simply dropped.
        let _ = ingest_tx.send(UpdaterMsg::Ingest(IngestBatch {
            time_minutes,
            batch: mini_batch,
        }));
        processed.fetch_add(submitted.len() as u64, Ordering::Release);
    }
    if let Some(tel) = telemetry {
        tally.finish(tel);
    }
    report.snapshot_refreshes = reader.refreshes();
    report.last_epoch = reader.epoch();
    report
}

/// The synchronous single-worker loop: the worker itself owns the authoritative node,
/// ingests inline, trains every `every_batches` batches, and publishes after each update
/// block. Deterministic given a deterministic request feed — the determinism-parity test
/// drives this mode against the plain `ServingNode` serve/update loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sync_worker(
    rx: &Receiver<Request>,
    batcher: &BatcherConfig,
    mut node: ServingNode,
    publisher: &Arc<EpochPublisher<ServingSnapshot>>,
    every_batches: usize,
    rounds: usize,
    batch_size: usize,
    processed: &AtomicU64,
    telemetry: Option<&Telemetry>,
) -> (WorkerReport, UpdaterReport, ServingNode) {
    let mut report = WorkerReport::default();
    let mut updater = UpdaterReport::default();
    let mut reader = publisher.reader();
    let mut tally = EpochTally::new();
    let mut batches_since_update = 0usize;
    while let Some(batch) = next_batch(rx, batcher) {
        let adopted = reader.refresh();
        if let Some(tel) = telemetry {
            tally.on_refresh(adopted, &reader, tel);
        }
        let Unpacked {
            submitted,
            replies,
            traces,
            time_minutes,
            mini_batch,
        } = unpack(batch);
        let n = mini_batch.len();
        let serve_started = Instant::now();
        serve_and_record(
            reader.get(),
            &mini_batch,
            &submitted,
            replies,
            traces,
            &mut report,
            telemetry,
        );
        if let Some(tel) = telemetry {
            let serve_us = u64::try_from(serve_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            record_batch(tel, n, serve_us);
            tally.requests_this_epoch += n as u64;
        }

        node.ingest_batch(time_minutes, &mini_batch);
        updater.ingested_batches += 1;
        updater.ingested_requests += mini_batch.len() as u64;

        batches_since_update += 1;
        if batches_since_update >= every_batches {
            batches_since_update = 0;
            let span_started = telemetry.map(|tel| tel.spans.now_us());
            let round_started = Instant::now();
            for _ in 0..rounds {
                node.online_update_round(time_minutes, batch_size);
                updater.update_rounds += 1;
            }
            let mut snapshot = node.snapshot();
            if telemetry.is_some() {
                snapshot.adopt_cache_stats(&publisher.load().1);
            }
            let checksum = snapshot.checksum();
            let epoch = publisher.publish(snapshot);
            updater.publications += 1;
            updater.published.push((epoch, checksum));
            let round_ms = round_started.elapsed().as_secs_f64() * 1e3;
            updater.round_times_ms.push(round_ms);
            if let Some(tel) = telemetry {
                let round_us = (round_ms * 1e3) as u64;
                tel.update_rounds.add(rounds as u64);
                tel.update_round_us.record(round_ms * 1e3);
                tel.publications.inc();
                tel.snapshot_epoch
                    .set(i64::try_from(epoch).unwrap_or(i64::MAX));
                tel.trace
                    .push(TraceKind::UpdateRound, rounds as u64, round_us);
                tel.trace.push(TraceKind::EpochPublish, epoch, checksum);
                crate::telemetry::push_publication_span(
                    tel,
                    epoch,
                    span_started.unwrap_or_default(),
                );
            }
        }
        processed.fetch_add(submitted.len() as u64, Ordering::Release);
    }
    if let Some(tel) = telemetry {
        tally.finish(tel);
    }
    report.snapshot_refreshes = reader.refreshes();
    report.last_epoch = reader.epoch();
    (report, updater, node)
}
