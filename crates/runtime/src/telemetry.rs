//! Runtime telemetry: pre-registered metric handles over [`liveupdate_obs`].
//!
//! [`Telemetry`] is created once per [`ServingRuntime`](crate::runtime::ServingRuntime)
//! (when [`RuntimeConfig::telemetry`](crate::config::RuntimeConfig::telemetry) is on)
//! and cloned by `Arc` into every worker and the updater. All hot-path instrumentation
//! goes through the handles below — one relaxed atomic operation per recorded value,
//! never a registry lock — and everything is scraped through
//! [`MetricsRegistry::snapshot`], locally via
//! [`ServingRuntime::scrape`](crate::runtime::ServingRuntime::scrape) or remotely via
//! the net tier's `Frame::Stats`.
//!
//! # Metric names
//!
//! The names below are the workspace-wide contract: every execution backend
//! (analytic, sim, realtime, distributed) reports the same names in its
//! `ScenarioReport::telemetry` section, so dashboards and tests compare like with
//! like. Histograms flatten to `<name>_p50` / `<name>_p99` / `<name>_count` rows.
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `serve_requests_total` | counter | requests served to completion |
//! | `serve_requests_shed_total` | counter | requests shed at a full queue |
//! | `serve_batches_total` | counter | batches closed and served |
//! | `serve_batch_occupancy` | histogram | requests per closed batch |
//! | `serve_latency_us` | histogram | per-request submit-to-completion latency |
//! | `serve_batch_duration_us` | histogram | per-batch serve call duration |
//! | `serve_queue_depth` | gauge | submitted minus completed (sampled at scrape) |
//! | `update_rounds_total` | counter | update rounds run by the updater |
//! | `update_round_duration_us` | histogram | duration of each update block |
//! | `publications_total` | counter | epoch-swap publications |
//! | `snapshot_epoch` | gauge | most recently published epoch |
//! | `epoch_age_us` | gauge | age of the published snapshot (set at scrape) |
//! | `publish_to_first_serve_us` | histogram | publication-to-adoption lag per worker |
//! | `requests_per_epoch` | histogram | requests a worker served from one epoch |
//! | `hot_row_cache_hits_t<i>` | gauge | cumulative cache hits, table `i` (scrape) |
//! | `hot_row_cache_misses_t<i>` | gauge | cumulative cache misses, table `i` (scrape) |
//! | `stage_queue_wait_us` | histogram | traced: enqueued → batch closed |
//! | `stage_batch_wait_us` | histogram | traced: batch closed → serve start |
//! | `stage_serve_us` | histogram | traced: serve start → serve done |
//! | `stage_reply_flush_us` | histogram | traced: serve done → reply flushed |
//!
//! The four `stage_*_us` histograms are the per-request latency breakdown: they are
//! fed only by *traced* requests (see
//! [`RuntimeConfig::trace_sample_rate`](crate::config::RuntimeConfig::trace_sample_rate))
//! and their names mirror [`liveupdate_obs::span::STAGE_HISTOGRAMS`] — the `analyze`
//! stage-name rule pins the two lists together.
//!
//! The net tier adds `net_*` series (wakeups, ready events, owed replies, open
//! connections, handler backlog) through the same registry; see
//! `liveupdate_net::server`. Completed request spans are collected separately in
//! [`Telemetry::spans`] and pulled over the wire by `Frame::TraceDump`.

use liveupdate_obs::{Counter, Gauge, LogLinearHistogram, MetricsRegistry, SpanRing, TraceRing};
use std::sync::Arc;

/// Default trace-ring capacity: enough for minutes of update/publication/batch events
/// at realistic rates without growing unbounded.
pub const TRACE_CAPACITY: usize = 4096;

/// Default span-ring capacity: the most recent sampled request spans held for the
/// next trace dump; overwrite-oldest beyond this.
pub const SPAN_CAPACITY: usize = 4096;

/// Trace-id flag marking updater publication spans (top bit set, epoch in the low
/// bits) so they never collide with request trace ids from sequential counters.
pub const PUBLICATION_TRACE_FLAG: u64 = 1 << 63;

/// Pre-registered metric handles shared by every thread of one runtime.
#[derive(Debug)]
pub struct Telemetry {
    /// The backing registry (for scrapes, text exposition, and net-tier extensions).
    pub registry: Arc<MetricsRegistry>,
    /// The trace ring (update rounds, publications, batch closes, sheds).
    pub trace: Arc<TraceRing>,
    /// The span ring: completed request spans (and updater publication spans) from
    /// sampled traces, drained by `ServingRuntime::drain_spans` / `Frame::TraceDump`.
    pub spans: Arc<SpanRing>,
    /// The per-stage latency histograms, indexed like
    /// [`liveupdate_obs::span::STAGE_HISTOGRAMS`] (queue wait, batch wait, serve,
    /// reply flush).
    pub stage_us: [Arc<LogLinearHistogram>; 4],
    /// `serve_requests_total`.
    pub requests_total: Arc<Counter>,
    /// `serve_requests_shed_total`.
    pub requests_shed: Arc<Counter>,
    /// `serve_batches_total`.
    pub batches_total: Arc<Counter>,
    /// `serve_batch_occupancy`.
    pub batch_occupancy: Arc<LogLinearHistogram>,
    /// `serve_latency_us`.
    pub serve_latency_us: Arc<LogLinearHistogram>,
    /// `serve_batch_duration_us`.
    pub serve_batch_us: Arc<LogLinearHistogram>,
    /// `serve_queue_depth` (sampled at scrape time from the submit/complete counters).
    pub queue_depth: Arc<Gauge>,
    /// `update_rounds_total`.
    pub update_rounds: Arc<Counter>,
    /// `update_round_duration_us`.
    pub update_round_us: Arc<LogLinearHistogram>,
    /// `publications_total`.
    pub publications: Arc<Counter>,
    /// `snapshot_epoch`.
    pub snapshot_epoch: Arc<Gauge>,
    /// `epoch_age_us` (set at scrape time from the publisher's publish stamp).
    pub epoch_age_us: Arc<Gauge>,
    /// `publish_to_first_serve_us`.
    pub publish_to_first_serve_us: Arc<LogLinearHistogram>,
    /// `requests_per_epoch`.
    pub requests_per_epoch: Arc<LogLinearHistogram>,
}

impl Telemetry {
    /// Build a fresh registry and register every runtime metric in it.
    #[must_use]
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceRing::new(TRACE_CAPACITY));
        let spans = Arc::new(SpanRing::new(SPAN_CAPACITY));
        Self {
            stage_us: [
                registry.histogram("stage_queue_wait_us"),
                registry.histogram("stage_batch_wait_us"),
                registry.histogram("stage_serve_us"),
                registry.histogram("stage_reply_flush_us"),
            ],
            requests_total: registry.counter("serve_requests_total"),
            requests_shed: registry.counter("serve_requests_shed_total"),
            batches_total: registry.counter("serve_batches_total"),
            batch_occupancy: registry.histogram("serve_batch_occupancy"),
            serve_latency_us: registry.histogram("serve_latency_us"),
            serve_batch_us: registry.histogram("serve_batch_duration_us"),
            queue_depth: registry.gauge("serve_queue_depth"),
            update_rounds: registry.counter("update_rounds_total"),
            update_round_us: registry.histogram("update_round_duration_us"),
            publications: registry.counter("publications_total"),
            snapshot_epoch: registry.gauge("snapshot_epoch"),
            epoch_age_us: registry.gauge("epoch_age_us"),
            publish_to_first_serve_us: registry.histogram("publish_to_first_serve_us"),
            requests_per_epoch: registry.histogram("requests_per_epoch"),
            registry,
            trace,
            spans,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Publish an updater publication span: trace id = [`PUBLICATION_TRACE_FLAG`]` |
/// epoch`, stages `serve_start` → `serve_done` covering the update work that
/// produced the epoch (`started_us` from [`SpanRing::now_us`] before the block).
/// These spans share the request span ring so one trace dump carries both views.
pub fn push_publication_span(tel: &Telemetry, epoch: u64, started_us: u64) {
    use liveupdate_obs::span::{
        next_span_id, SpanRecord, NUM_STAGES, STAGE_SERVE_DONE, STAGE_SERVE_START,
    };
    let mut stages = [0u64; NUM_STAGES];
    stages[STAGE_SERVE_START] = started_us.max(1);
    stages[STAGE_SERVE_DONE] = tel.spans.now_us();
    tel.spans.push(&SpanRecord {
        trace_id: PUBLICATION_TRACE_FLAG | epoch,
        span_id: next_span_id(),
        parent_span_id: 0,
        stages,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contract_names_are_registered() {
        let tel = Telemetry::new();
        let rows = tel.registry.snapshot();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "serve_requests_total",
            "serve_requests_shed_total",
            "serve_batches_total",
            "serve_batch_occupancy_p99",
            "serve_latency_us_p50",
            "serve_latency_us_p99",
            "serve_batch_duration_us_count",
            "serve_queue_depth",
            "update_rounds_total",
            "update_round_duration_us_p99",
            "publications_total",
            "snapshot_epoch",
            "epoch_age_us",
            "publish_to_first_serve_us_p99",
            "requests_per_epoch_p50",
            "stage_queue_wait_us_p99",
            "stage_batch_wait_us_p99",
            "stage_serve_us_p99",
            "stage_reply_flush_us_p50",
        ] {
            assert!(
                names.contains(&expected),
                "missing metric {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn handles_feed_the_registry() {
        let tel = Telemetry::new();
        tel.requests_total.add(10);
        tel.serve_latency_us.record(125.0);
        tel.snapshot_epoch.set(7);
        let rows: std::collections::BTreeMap<String, f64> =
            tel.registry.snapshot().into_iter().collect();
        assert_eq!(rows["serve_requests_total"], 10.0);
        assert_eq!(rows["serve_latency_us_count"], 1.0);
        assert_eq!(rows["snapshot_epoch"], 7.0);
    }

    #[test]
    fn stage_histograms_match_the_obs_stage_family() {
        // The literal names registered above and the obs-side stage constant must
        // stay one list; the analyze stage-name rule enforces the doc table, this
        // test pins the handles.
        let tel = Telemetry::new();
        for (hist, name) in tel
            .stage_us
            .iter()
            .zip(liveupdate_obs::span::STAGE_HISTOGRAMS)
        {
            hist.record(10.0);
            let rows: std::collections::BTreeMap<String, f64> =
                tel.registry.snapshot().into_iter().collect();
            assert_eq!(rows[&format!("{name}_count")], 1.0, "{name}");
        }
    }
}
