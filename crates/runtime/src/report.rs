//! Measured results of a runtime run: real wall-clock QPS, latency percentiles, and
//! update-round interference.

use liveupdate_sim::latency::LatencyRecorder;

/// Per-worker measurements, returned by each worker thread at join.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Requests this worker served to completion.
    pub served: u64,
    /// Inference batches the deadline batcher closed.
    pub batches: u64,
    /// Individual lookups that took the LoRA-corrected path.
    pub lora_corrected_lookups: u64,
    /// Sum of predicted probabilities (for a cheap sanity mean).
    pub prediction_sum: f64,
    /// Snapshot publications this worker adopted.
    pub snapshot_refreshes: u64,
    /// Highest epoch this worker observed.
    pub last_epoch: u64,
    /// Per-request latency samples (queue wait + batching + inference), milliseconds.
    pub latency: LatencyRecorder,
}

/// Updater-side measurements.
#[derive(Debug, Clone, Default)]
pub struct UpdaterReport {
    /// Served batches ingested into the retention buffer.
    pub ingested_batches: u64,
    /// Requests contained in those batches.
    pub ingested_requests: u64,
    /// Update events performed by the active policy (training rounds or sync pulls).
    pub update_rounds: u64,
    /// Snapshot publications (epoch swaps).
    pub publications: u64,
    /// Parameters shipped from a shadow trainer into the node (QuickUpdate /
    /// DeltaUpdate policies; 0 for LiveUpdate — the paper's near-zero-shipment claim).
    pub params_pulled: u64,
    /// Wall-clock milliseconds of each published update block (train + capture + swap).
    pub round_times_ms: Vec<f64>,
    /// `(epoch, checksum)` of every published snapshot, including the initial epoch 0.
    pub published: Vec<(u64, u64)>,
}

impl UpdaterReport {
    /// Mean wall-clock milliseconds per update block, or 0 when none ran.
    #[must_use]
    pub fn mean_round_ms(&self) -> f64 {
        if self.round_times_ms.is_empty() {
            0.0
        } else {
            self.round_times_ms.iter().sum::<f64>() / self.round_times_ms.len() as f64
        }
    }

    /// Longest update block in milliseconds, or 0 when none ran.
    #[must_use]
    pub fn max_round_ms(&self) -> f64 {
        self.round_times_ms.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Aggregated result of one runtime run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Worker threads that served.
    pub num_workers: usize,
    /// Wall-clock duration from start to the last worker joining, in seconds.
    pub wall_seconds: f64,
    /// Requests submitted into the queues (accepted by `try_send`/`send`).
    pub submitted: u64,
    /// Requests shed because a bounded queue was full (open-loop overload).
    pub dropped: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Measured throughput: `completed / wall_seconds`.
    pub qps: f64,
    /// Merged per-request latency samples across workers, milliseconds.
    pub latency: LatencyRecorder,
    /// Inference batches closed across workers.
    pub batches: u64,
    /// Lookups that took the LoRA-corrected path.
    pub lora_corrected_lookups: u64,
    /// Snapshot adoptions summed over workers.
    pub snapshot_refreshes: u64,
    /// The updater's side of the story.
    pub updater: UpdaterReport,
    /// Raw per-worker reports.
    pub per_worker: Vec<WorkerReport>,
    /// Final flattened telemetry snapshot (`name → value` rows, sorted by name),
    /// scraped from the runtime's registry after every thread folded in its last
    /// values. Empty when the runtime ran with `telemetry: false`.
    pub telemetry: Vec<(String, f64)>,
}

impl RuntimeReport {
    /// Mean requests per closed batch, or 0 when none.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Fraction of submitted requests that were shed.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let offered = self.submitted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }

    /// The per-stage latency breakdown extracted from the telemetry rows. Empty when
    /// telemetry was off or no request was traced
    /// ([`RuntimeConfig::trace_sample_rate`](crate::config::RuntimeConfig::trace_sample_rate)
    /// at 0).
    #[must_use]
    pub fn breakdown(&self) -> Vec<StageLatency> {
        stage_breakdown(&self.telemetry)
    }

    /// One human-readable summary line (used by the example and the bench target).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "workers={} wall={:.2}s qps={:.0} p50={:.3}ms p99={:.3}ms max={:.3}ms drops={} \
             batches={} mean_batch={:.1} rounds={} publications={} mean_round={:.3}ms",
            self.num_workers,
            self.wall_seconds,
            self.qps,
            self.latency.p50().unwrap_or(0.0),
            self.latency.p99().unwrap_or(0.0),
            self.latency.max().unwrap_or(0.0),
            self.dropped,
            self.batches,
            self.mean_batch_size(),
            self.updater.update_rounds,
            self.updater.publications,
            self.updater.mean_round_ms(),
        )
    }
}

/// One row of the per-stage latency breakdown (microseconds): where a traced
/// request's time went between two adjacent stage boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// The stage-histogram family name (one of
    /// [`liveupdate_obs::span::STAGE_HISTOGRAMS`]).
    pub stage: String,
    /// Median stage duration, µs.
    pub p50_us: f64,
    /// Tail stage duration, µs.
    pub p99_us: f64,
    /// Traced requests that contributed.
    pub count: u64,
}

/// Extract the per-stage latency breakdown from flattened telemetry rows — the shared
/// reader for `RuntimeReport`, `DistributedReport`, and `ScenarioReport`, all of which
/// carry the same `stage_*_us_{p50,p99,count}` row names (scraped live on the
/// realtime/distributed backends, synthesized by the analytic/sim engines). Stages
/// with no recorded samples are omitted.
#[must_use]
pub fn stage_breakdown(rows: &[(String, f64)]) -> Vec<StageLatency> {
    let get = |name: &str| rows.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    liveupdate_obs::span::STAGE_HISTOGRAMS
        .iter()
        .filter_map(|&stage| {
            let count = get(&format!("{stage}_count")).unwrap_or(0.0);
            if count <= 0.0 {
                return None;
            }
            Some(StageLatency {
                stage: stage.to_string(),
                p50_us: get(&format!("{stage}_p50"))?,
                p99_us: get(&format!("{stage}_p99"))?,
                count: count as u64,
            })
        })
        .collect()
}

/// Render a breakdown as one aligned text line per stage (the form the examples and
/// the trace walkthrough print); empty string when there are no rows.
#[must_use]
pub fn breakdown_lines(breakdown: &[StageLatency]) -> String {
    let mut out = String::new();
    for row in breakdown {
        out.push_str(&format!(
            "  {:<22} p50={:>8.0}us p99={:>8.0}us n={}\n",
            row.stage, row.p50_us, row.p99_us, row.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_breakdown_reads_the_row_family() {
        let rows = vec![
            ("stage_queue_wait_us_count".to_string(), 5.0),
            ("stage_queue_wait_us_p50".to_string(), 100.0),
            ("stage_queue_wait_us_p99".to_string(), 400.0),
            ("stage_serve_us_count".to_string(), 0.0), // untraced: omitted
            ("serve_latency_us_p99".to_string(), 9.0), // unrelated row
        ];
        let b = stage_breakdown(&rows);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].stage, "stage_queue_wait_us");
        assert_eq!(b[0].count, 5);
        assert_eq!(b[0].p99_us, 400.0);
        let text = breakdown_lines(&b);
        assert!(text.contains("stage_queue_wait_us"), "{text}");
        assert!(stage_breakdown(&[]).is_empty());
    }

    #[test]
    fn updater_round_stats() {
        let mut u = UpdaterReport::default();
        assert_eq!(u.mean_round_ms(), 0.0);
        assert_eq!(u.max_round_ms(), 0.0);
        u.round_times_ms = vec![1.0, 3.0, 2.0];
        assert!((u.mean_round_ms() - 2.0).abs() < 1e-12);
        assert_eq!(u.max_round_ms(), 3.0);
    }

    #[test]
    fn report_derived_metrics() {
        let mut latency = LatencyRecorder::new();
        latency.record_all([1.0, 2.0, 3.0]);
        let r = RuntimeReport {
            num_workers: 2,
            wall_seconds: 2.0,
            submitted: 90,
            dropped: 10,
            completed: 90,
            qps: 45.0,
            latency,
            batches: 9,
            lora_corrected_lookups: 0,
            snapshot_refreshes: 4,
            updater: UpdaterReport::default(),
            per_worker: Vec::new(),
            telemetry: Vec::new(),
        };
        assert!((r.mean_batch_size() - 10.0).abs() < 1e-12);
        assert!((r.drop_rate() - 0.1).abs() < 1e-12);
        assert!(r.summary_line().contains("qps=45"));
    }
}
