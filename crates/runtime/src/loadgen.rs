//! Open-loop Poisson load generation against a running [`ServingRuntime`].
//!
//! The generator replays the diurnal [`ArrivalModel`] in compressed wall-clock time via
//! [`RealTimePacer`]: arrival offsets are computed *before* any request is sent, the
//! generator sleeps until each scheduled instant and never waits for responses. Requests
//! are stamped with their **scheduled** submit instant, so if the generator falls behind
//! (or a queue backs up) the measured latency honestly includes the lag instead of being
//! coordinated away. Requests that meet a full bounded queue are shed and counted, as an
//! overloaded open-loop system must.

use crate::runtime::{ServingRuntime, SubmitOutcome};
use liveupdate_dlrm::sample::Sample;
use liveupdate_workload::arrival::{ArrivalModel, RealTimePacer};
use liveupdate_workload::synthetic::SyntheticWorkload;
use std::time::{Duration, Instant};

/// Parameters of one open-loop load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// The diurnal arrival-rate model being replayed.
    pub arrival: ArrivalModel,
    /// Mean wall-clock request rate when the model sits at its base rate.
    pub target_qps: f64,
    /// Simulated start time in minutes (e.g. the evening peak).
    pub start_minutes: f64,
    /// Wall-clock length of the run.
    pub duration: Duration,
    /// Seed of the Poisson arrival stream.
    pub seed: u64,
    /// Number of samples pre-generated from the workload and cycled through (request
    /// construction must not throttle the generator).
    pub sample_pool: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            arrival: ArrivalModel::default(),
            target_qps: 1_000.0,
            start_minutes: 20.0 * 60.0, // the diurnal peak hour
            duration: Duration::from_secs(2),
            seed: 0xA11CE,
            sample_pool: 2_048,
        }
    }
}

/// What the generator did, from its own (offered-load) perspective.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadGenReport {
    /// Requests offered (accepted + shed).
    pub offered: u64,
    /// Requests accepted into a queue.
    pub accepted: u64,
    /// Requests shed because the target queue was full.
    pub shed: u64,
    /// Arrivals whose scheduled instant had already passed when the generator got to
    /// them (the generator fell behind the open-loop schedule).
    pub behind: u64,
    /// Wall-clock seconds the generator actually ran.
    pub wall_seconds: f64,
}

/// Drive `runtime` with open-loop Poisson traffic drawn from `workload`. Runs on the
/// calling thread until `cfg.duration` of wall time has elapsed (or every queue closes).
pub fn run_open_loop(
    runtime: &ServingRuntime,
    workload: &mut SyntheticWorkload,
    cfg: &LoadGenConfig,
) -> LoadGenReport {
    assert!(cfg.sample_pool > 0, "sample pool must be non-empty");
    let mut pacer = RealTimePacer::for_target_qps(
        cfg.arrival.clone(),
        cfg.target_qps,
        cfg.start_minutes,
        cfg.seed,
    );
    // Pre-generate the request pool across the replayed sim span so drift/popularity
    // structure is preserved without paying generation cost on the hot loop.
    let sim_span_minutes = cfg.duration.as_secs_f64() * pacer.sim_minutes_per_wall_second();
    let pool: Vec<Sample> = (0..cfg.sample_pool)
        .map(|i| {
            let t = cfg.start_minutes + sim_span_minutes * (i as f64 / cfg.sample_pool as f64);
            workload.sample_at(t)
        })
        .collect();
    let mut report = LoadGenReport::default();
    let started = Instant::now();
    let mut pool_cursor = 0usize;
    loop {
        let (offset, sim_minutes) = pacer.next_arrival();
        if offset >= cfg.duration {
            break;
        }
        let now = started.elapsed();
        if offset > now {
            std::thread::sleep(offset - now);
        } else {
            report.behind += 1;
        }
        let sample = pool[pool_cursor % pool.len()].clone();
        pool_cursor += 1;
        // Stamp the scheduled arrival instant, not "now": no coordinated omission.
        // Routing is the runtime's job ([`RuntimeConfig::routing`] → its `Router`), not
        // the generator's — one policy decides queue assignment for every submitter.
        let scheduled = started + offset;
        report.offered += 1;
        match runtime.submit_routed_scheduled(sample, sim_minutes, scheduled) {
            SubmitOutcome::Accepted => report.accepted += 1,
            SubmitOutcome::Shed => report.shed += 1,
            SubmitOutcome::Closed => break,
        }
    }
    report.wall_seconds = started.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = LoadGenConfig::default();
        assert!(cfg.target_qps > 0.0);
        assert!(cfg.sample_pool > 0);
        assert!(cfg.duration > Duration::ZERO);
    }
}
