//! Interaction records and the bounded retention buffer feeding the online update path.
//!
//! LiveUpdate has no training pipeline on inference nodes; instead it caches the feature
//! IDs and labels of real-time requests in a ring buffer with a bounded retention window
//! (10 minutes in the paper, §IV-E) and trains the LoRA factors from that buffer.
//! [`RetentionBuffer`] is that structure: append-only at the head, evicting records older
//! than the retention window, with cheap uniform sampling of training mini-batches.

use liveupdate_dlrm::sample::{MiniBatch, Sample};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One served request retained for online training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Simulation time (minutes) at which the request was served.
    pub timestamp_minutes: f64,
    /// The request features and its (delayed) click label.
    pub sample: Sample,
}

impl InteractionRecord {
    /// Create a record.
    #[must_use]
    pub fn new(timestamp_minutes: f64, sample: Sample) -> Self {
        Self {
            timestamp_minutes,
            sample,
        }
    }
}

/// A time-bounded ring buffer of [`InteractionRecord`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionBuffer {
    retention_minutes: f64,
    max_records: usize,
    records: VecDeque<InteractionRecord>,
    /// Total number of records ever pushed (including evicted ones).
    total_pushed: u64,
}

impl RetentionBuffer {
    /// Create a buffer with the given retention window (minutes) and a hard cap on the
    /// number of records kept (memory bound).
    ///
    /// # Panics
    ///
    /// Panics if `retention_minutes <= 0` or `max_records == 0`.
    #[must_use]
    pub fn new(retention_minutes: f64, max_records: usize) -> Self {
        assert!(retention_minutes > 0.0, "retention window must be positive");
        assert!(max_records > 0, "max_records must be positive");
        Self {
            retention_minutes,
            max_records,
            records: VecDeque::new(),
            total_pushed: 0,
        }
    }

    /// Retention window in minutes.
    #[must_use]
    pub fn retention_minutes(&self) -> f64 {
        self.retention_minutes
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of records ever pushed, including evicted ones.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Push a record taken at `timestamp_minutes` and evict anything that falls outside the
    /// retention window relative to this (newest) timestamp, or beyond the record cap.
    pub fn push(&mut self, record: InteractionRecord) {
        let now = record.timestamp_minutes;
        self.records.push_back(record);
        self.total_pushed += 1;
        self.evict(now);
    }

    /// Push a whole batch of samples observed at the same timestamp.
    pub fn push_batch(&mut self, timestamp_minutes: f64, batch: &MiniBatch) {
        for sample in batch.iter() {
            self.records
                .push_back(InteractionRecord::new(timestamp_minutes, sample.clone()));
            self.total_pushed += 1;
        }
        self.evict(timestamp_minutes);
    }

    /// Drop records outside the retention window (relative to `now`) or beyond the cap.
    fn evict(&mut self, now_minutes: f64) {
        let cutoff = now_minutes - self.retention_minutes;
        while let Some(front) = self.records.front() {
            if front.timestamp_minutes < cutoff || self.records.len() > self.max_records {
                self.records.pop_front();
            } else {
                break;
            }
        }
        while self.records.len() > self.max_records {
            self.records.pop_front();
        }
    }

    /// Iterate over retained records in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &InteractionRecord> {
        self.records.iter()
    }

    /// Uniformly sample (with replacement) a training mini-batch from the retained records.
    /// Returns an empty batch when the buffer is empty.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> MiniBatch {
        if self.records.is_empty() {
            return MiniBatch::default();
        }
        (0..count)
            .map(|_| {
                let idx = rng.gen_range(0..self.records.len());
                self.records[idx].sample.clone()
            })
            .collect()
    }

    /// The most recent `count` records as a mini-batch (fewer if the buffer is smaller).
    #[must_use]
    pub fn latest_batch(&self, count: usize) -> MiniBatch {
        self.records
            .iter()
            .rev()
            .take(count)
            .map(|r| r.sample.clone())
            .collect()
    }

    /// Approximate bytes retained, assuming `f64` dense features and `usize` sparse IDs.
    #[must_use]
    pub fn approximate_bytes(&self) -> usize {
        self.records
            .iter()
            .map(|r| {
                std::mem::size_of::<f64>() * (r.sample.dense.len() + 2)
                    + std::mem::size_of::<usize>() * r.sample.num_lookups()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(id: usize) -> Sample {
        Sample::new(vec![0.0, 1.0], vec![vec![id]], 1.0)
    }

    #[test]
    #[should_panic(expected = "retention window must be positive")]
    fn zero_retention_rejected() {
        let _ = RetentionBuffer::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "max_records must be positive")]
    fn zero_capacity_rejected() {
        let _ = RetentionBuffer::new(10.0, 0);
    }

    #[test]
    fn push_and_len() {
        let mut buf = RetentionBuffer::new(10.0, 100);
        assert!(buf.is_empty());
        buf.push(InteractionRecord::new(0.0, sample(1)));
        buf.push(InteractionRecord::new(1.0, sample(2)));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.total_pushed(), 2);
        assert_eq!(buf.retention_minutes(), 10.0);
    }

    #[test]
    fn old_records_evicted_by_time() {
        let mut buf = RetentionBuffer::new(10.0, 1000);
        buf.push(InteractionRecord::new(0.0, sample(1)));
        buf.push(InteractionRecord::new(5.0, sample(2)));
        buf.push(InteractionRecord::new(15.5, sample(3)));
        // Records at t=0 and t=5 are both older than 15.5 - 10 = 5.5 → only t=5? No: 5.0 < 5.5 so evicted.
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.iter().next().unwrap().timestamp_minutes, 15.5);
        assert_eq!(buf.total_pushed(), 3);
    }

    #[test]
    fn capacity_cap_enforced() {
        let mut buf = RetentionBuffer::new(1e9, 5);
        for i in 0..20 {
            buf.push(InteractionRecord::new(i as f64, sample(i)));
        }
        assert_eq!(buf.len(), 5);
        // Only the newest 5 remain.
        let ids: Vec<usize> = buf.iter().map(|r| r.sample.sparse[0][0]).collect();
        assert_eq!(ids, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn push_batch_and_latest() {
        let mut buf = RetentionBuffer::new(10.0, 100);
        let batch = MiniBatch::new(vec![sample(1), sample(2), sample(3)]);
        buf.push_batch(1.0, &batch);
        assert_eq!(buf.len(), 3);
        let latest = buf.latest_batch(2);
        assert_eq!(latest.len(), 2);
        assert_eq!(latest.samples[0].sparse[0][0], 3);
    }

    #[test]
    fn sample_batch_uniform_and_bounded() {
        let mut buf = RetentionBuffer::new(100.0, 1000);
        for i in 0..50 {
            buf.push(InteractionRecord::new(0.0, sample(i)));
        }
        let mut rng = StdRng::seed_from_u64(4);
        let batch = buf.sample_batch(&mut rng, 200);
        assert_eq!(batch.len(), 200);
        assert!(batch.iter().all(|s| s.sparse[0][0] < 50));
        // Empty buffer gives an empty batch.
        let empty = RetentionBuffer::new(10.0, 10);
        assert!(empty.sample_batch(&mut rng, 5).is_empty());
    }

    #[test]
    fn approximate_bytes_grows_with_records() {
        let mut buf = RetentionBuffer::new(100.0, 1000);
        assert_eq!(buf.approximate_bytes(), 0);
        buf.push(InteractionRecord::new(0.0, sample(1)));
        let one = buf.approximate_bytes();
        buf.push(InteractionRecord::new(0.0, sample(2)));
        assert_eq!(buf.approximate_bytes(), 2 * one);
    }
}
