//! Synthetic CTR workloads for the LiveUpdate reproduction.
//!
//! The paper evaluates LiveUpdate on public datasets (Avazu, Criteo) and on TB-scale
//! production traces from ByteDance. Neither the traces nor the petabyte embedding tables
//! are available, so this crate builds the closest synthetic equivalent that exercises the
//! same code paths (see DESIGN.md §1):
//!
//! * [`zipf`] — a Zipfian ID sampler reproducing the heavy skew of embedding accesses
//!   (paper Fig. 12: the top 10 % of rows receive ≈ 94 % of lookups).
//! * [`drift`] — a non-stationary ground-truth click model, so models that are not
//!   refreshed lose accuracy over time (paper Fig. 3b).
//! * [`arrival`] — a diurnal request-arrival model calibrated to the paper's sustained
//!   "100 million requests / 5 min" load (paper Fig. 4).
//! * [`synthetic`] — the stream generator tying it all together and producing
//!   [`liveupdate_dlrm::Sample`]s labelled by the drifting ground truth.
//! * [`datasets`] — presets mirroring Table II (Avazu, Criteo, BD-TB and the TB-scale
//!   variants used for cost modelling).
//! * [`trace`] — interaction records and the bounded retention buffer that feeds the
//!   online update path (paper §IV-E).
//! * [`access`] — access-distribution statistics (CDF, top-k share).
//! * [`shard`] — deterministic sharding of the request stream across serving replicas
//!   (hash-by-user and round-robin routing for the multi-replica cluster).

pub mod access;
pub mod arrival;
pub mod datasets;
pub mod drift;
pub mod shard;
pub mod synthetic;
pub mod trace;
pub mod zipf;

pub use datasets::{DatasetPreset, DatasetSpec};
pub use drift::DriftConfig;
pub use shard::{ShardPolicy, ShardedStream, StreamSharder};
pub use synthetic::{SyntheticWorkload, WorkloadConfig};
pub use trace::{InteractionRecord, RetentionBuffer};
pub use zipf::ZipfSampler;
