//! Deterministic sharding of a CTR request stream across serving replicas.
//!
//! A multi-replica serving cluster routes every incoming request to exactly one replica.
//! [`StreamSharder`] implements the two routing policies the LiveUpdate scalability
//! experiments use:
//!
//! * [`ShardPolicy::HashByUser`] — stable FNV-1a hash of the sample's table-0 IDs (table 0
//!   plays the role of the user-id table in the synthetic workload), so the same user
//!   always lands on the same replica and per-replica traffic keeps the Zipfian skew;
//! * [`ShardPolicy::RoundRobin`] — strict rotation, so traffic is balanced to within one
//!   request regardless of the ID distribution.
//!
//! Both are pure functions of the sharder state and the sample — no randomness — so a
//! cluster run is reproducible from its seed. Within every shard the original stream
//! order is preserved.

use liveupdate_dlrm::sample::{MiniBatch, Sample};
use serde::{Deserialize, Serialize};

/// How requests are assigned to shards (replicas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Stable hash of the sample's table-0 (user) IDs.
    HashByUser,
    /// Strict rotation over the shards in stream order.
    RoundRobin,
}

/// Stateful, deterministic request router over a fixed number of shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSharder {
    policy: ShardPolicy,
    num_shards: usize,
    next_round_robin: usize,
}

/// FNV-1a over the little-endian bytes of the IDs — stable across runs and platforms
/// (unlike `std`'s `DefaultHasher`, which is randomly keyed).
fn fnv1a(ids: &[usize]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &id in ids {
        for byte in (id as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

impl StreamSharder {
    /// Create a sharder over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    #[must_use]
    pub fn new(policy: ShardPolicy, num_shards: usize) -> Self {
        assert!(num_shards > 0, "at least one shard is required");
        Self {
            policy,
            num_shards,
            next_round_robin: 0,
        }
    }

    /// Number of shards requests are routed over.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The routing policy.
    #[must_use]
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Stateless hash route of `sample` over `num_shards` — the [`ShardPolicy::HashByUser`]
    /// rule as a free function, so lock-free routers (e.g. the runtime's `Router`) can
    /// apply it from a shared reference.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    #[must_use]
    pub fn hash_route(sample: &Sample, num_shards: usize) -> usize {
        assert!(num_shards > 0, "at least one shard is required");
        let ids = sample.sparse.first().map_or(&[][..], Vec::as_slice);
        (fnv1a(ids) % num_shards as u64) as usize
    }

    /// The shard the next occurrence of `sample` is routed to. Round-robin advances the
    /// rotation; hashing is stateless.
    pub fn shard_of(&mut self, sample: &Sample) -> usize {
        match self.policy {
            ShardPolicy::HashByUser => Self::hash_route(sample, self.num_shards),
            ShardPolicy::RoundRobin => {
                let shard = self.next_round_robin;
                self.next_round_robin = (self.next_round_robin + 1) % self.num_shards;
                shard
            }
        }
    }

    /// Shard assignment of every sample of a batch, in stream order.
    pub fn assignments(&mut self, batch: &MiniBatch) -> Vec<usize> {
        batch.iter().map(|s| self.shard_of(s)).collect()
    }

    /// Group a batch into the per-shard mini-batches named by `assignments`, preserving
    /// the original stream order within every shard.
    ///
    /// # Panics
    ///
    /// Panics if `assignments` does not match the batch length or names an out-of-range
    /// shard.
    #[must_use]
    pub fn group(batch: &MiniBatch, assignments: &[usize], num_shards: usize) -> Vec<MiniBatch> {
        assert_eq!(
            assignments.len(),
            batch.len(),
            "one assignment per sample is required"
        );
        let mut shards: Vec<Vec<Sample>> = vec![Vec::new(); num_shards];
        for (sample, &shard) in batch.iter().zip(assignments) {
            assert!(
                shard < num_shards,
                "shard {shard} out of range ({num_shards})"
            );
            shards[shard].push(sample.clone());
        }
        shards.into_iter().map(MiniBatch::new).collect()
    }

    /// Split a batch into one mini-batch per shard under this sharder's policy.
    pub fn split(&mut self, batch: &MiniBatch) -> Vec<MiniBatch> {
        let assignments = self.assignments(batch);
        Self::group(batch, &assignments, self.num_shards)
    }

    /// Adapt a `(time, sample)` stream into a `(time, shard, sample)` stream, tagging each
    /// item with its route (see [`ShardedStream`]).
    pub fn shard_stream<I>(self, stream: I) -> ShardedStream<I>
    where
        I: Iterator<Item = (f64, Sample)>,
    {
        ShardedStream {
            inner: stream,
            sharder: self,
        }
    }
}

/// Iterator adapter produced by [`StreamSharder::shard_stream`]: yields
/// `(time_minutes, shard, sample)` triples in stream order.
#[derive(Debug, Clone)]
pub struct ShardedStream<I> {
    inner: I,
    sharder: StreamSharder,
}

impl<I> ShardedStream<I> {
    /// The underlying sharder (e.g. to inspect the rotation position).
    #[must_use]
    pub fn sharder(&self) -> &StreamSharder {
        &self.sharder
    }
}

impl<I: Iterator<Item = (f64, Sample)>> Iterator for ShardedStream<I> {
    type Item = (f64, usize, Sample);

    fn next(&mut self) -> Option<Self::Item> {
        let (t, sample) = self.inner.next()?;
        let shard = self.sharder.shard_of(&sample);
        Some((t, shard, sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticWorkload, WorkloadConfig};
    use proptest::prelude::*;

    fn batch(n: usize) -> MiniBatch {
        let mut w = SyntheticWorkload::new(WorkloadConfig::default());
        w.batch_at(0.0, n)
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = StreamSharder::new(ShardPolicy::RoundRobin, 0);
    }

    #[test]
    fn hash_routing_is_deterministic_and_stateless() {
        let b = batch(64);
        let mut a = StreamSharder::new(ShardPolicy::HashByUser, 4);
        let mut c = StreamSharder::new(ShardPolicy::HashByUser, 4);
        let first = a.assignments(&b);
        assert_eq!(first, c.assignments(&b));
        // Stateless: re-routing the same batch gives the same shards.
        assert_eq!(first, a.assignments(&b));
        assert!(first.iter().all(|&s| s < 4));
    }

    #[test]
    fn same_user_always_lands_on_same_shard() {
        let mut s = StreamSharder::new(ShardPolicy::HashByUser, 8);
        let mut sample = Sample::new(vec![0.0], vec![vec![42, 7], vec![3]], 0.0);
        let shard = s.shard_of(&sample);
        // Only non-user features change ⇒ the route must not.
        sample.sparse[1] = vec![99];
        sample.dense[0] = 1.0;
        assert_eq!(s.shard_of(&sample), shard);
        // Changing the user IDs is allowed to move the route.
        sample.sparse[0] = vec![43, 7];
        let _ = s.shard_of(&sample); // just must not panic
    }

    #[test]
    fn round_robin_balances_to_within_one() {
        let b = batch(10);
        let mut s = StreamSharder::new(ShardPolicy::RoundRobin, 4);
        let shards = s.split(&b);
        let sizes: Vec<usize> = shards.iter().map(MiniBatch::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // The rotation continues across batches.
        assert_eq!(s.shard_of(&b.samples[0]), 2);
    }

    #[test]
    fn single_shard_gets_everything_in_order() {
        let b = batch(16);
        for policy in [ShardPolicy::HashByUser, ShardPolicy::RoundRobin] {
            let mut s = StreamSharder::new(policy, 1);
            let shards = s.split(&b);
            assert_eq!(shards.len(), 1);
            assert_eq!(shards[0], b);
        }
    }

    #[test]
    fn sharded_stream_tags_items_in_order() {
        let mut w = SyntheticWorkload::new(WorkloadConfig::default());
        let window = w.window(0.0, 10.0, 20);
        let expected: Vec<Sample> = window.iter().map(|(_, s)| s.clone()).collect();
        let tagged: Vec<(f64, usize, Sample)> = StreamSharder::new(ShardPolicy::RoundRobin, 3)
            .shard_stream(window.into_iter())
            .collect();
        assert_eq!(tagged.len(), 20);
        for (i, (_, shard, sample)) in tagged.iter().enumerate() {
            assert_eq!(*shard, i % 3);
            assert_eq!(sample, &expected[i]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Splitting is a partition: every sample lands in exactly one shard, within-shard
        /// order follows stream order, and shard indices are in range.
        #[test]
        fn prop_split_is_an_order_preserving_partition(
            n in 1usize..80,
            num_shards in 1usize..6,
            use_hash in proptest::bool::ANY,
        ) {
            let b = batch(n);
            let policy = if use_hash { ShardPolicy::HashByUser } else { ShardPolicy::RoundRobin };
            let mut s = StreamSharder::new(policy, num_shards);
            let assignments = s.assignments(&b);
            let shards = StreamSharder::group(&b, &assignments, num_shards);
            prop_assert_eq!(shards.len(), num_shards);
            let total: usize = shards.iter().map(MiniBatch::len).sum();
            prop_assert_eq!(total, n);
            // Replaying the assignments must reproduce each shard's content in order.
            for (shard_idx, shard) in shards.iter().enumerate() {
                let expected: Vec<&Sample> = b
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == shard_idx)
                    .map(|(s, _)| s)
                    .collect();
                prop_assert_eq!(shard.len(), expected.len());
                for (got, want) in shard.iter().zip(expected) {
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
