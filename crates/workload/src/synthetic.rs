//! The synthetic CTR stream generator.
//!
//! [`SyntheticWorkload`] produces labelled [`Sample`]s whose joint distribution of IDs,
//! dense features and click labels is controlled by:
//!
//! * a Zipfian popularity distribution over IDs, with a slow *popularity rotation* so the
//!   hot set changes over time (emerging items),
//! * the drifting ground-truth affinity process of [`crate::drift`], and
//! * a per-table multi-hot width (most tables are one-hot, some are multi-hot).
//!
//! The click label for a sample at time `t` is drawn from
//! `p = sigmoid(bias + Σ_tables mean_affinity(ids, t) + w·dense)`, so a DLRM that tracks
//! the current affinities predicts well and a stale one does not — the property every
//! freshness experiment in the paper depends on.

use crate::drift::{AffinityDrift, DriftConfig};
use crate::zipf::ZipfSampler;
use liveupdate_dlrm::loss::sigmoid;
use liveupdate_dlrm::sample::{MiniBatch, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of embedding tables (sparse feature fields).
    pub num_tables: usize,
    /// Rows per embedding table.
    pub table_size: usize,
    /// Number of dense features per sample.
    pub dense_dim: usize,
    /// Zipf exponent of the ID popularity distribution.
    pub zipf_exponent: f64,
    /// Maximum multi-hot width; each sample draws between 1 and this many IDs per table.
    pub max_multi_hot: usize,
    /// Period (minutes) after which the popularity ranking rotates by `rotation_step`.
    pub popularity_rotation_minutes: f64,
    /// How many positions the rank→ID mapping shifts per rotation.
    pub rotation_step: usize,
    /// Ground-truth drift parameters.
    pub drift: DriftConfig,
    /// Global bias of the click logit (negative ⇒ clicks are rare, as in CTR data).
    pub click_bias: f64,
    /// RNG seed; two workloads with the same config and seed produce identical streams.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_tables: 4,
            table_size: 2000,
            dense_dim: 2,
            zipf_exponent: 1.05,
            max_multi_hot: 2,
            popularity_rotation_minutes: 30.0,
            rotation_step: 17,
            drift: DriftConfig::default(),
            click_bias: -0.4,
            seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// Validate the configuration.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.num_tables > 0
            && self.table_size > 0
            && self.dense_dim > 0
            && self.zipf_exponent >= 0.0
            && self.max_multi_hot >= 1
            && self.popularity_rotation_minutes > 0.0
            && self.drift.is_valid()
    }
}

/// Stateful generator of a time-indexed CTR stream.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    config: WorkloadConfig,
    zipf: ZipfSampler,
    drifts: Vec<AffinityDrift>,
    dense_weights: Vec<f64>,
    rng: StdRng,
}

impl SyntheticWorkload {
    /// Create a workload from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.is_valid(), "invalid workload configuration");
        let zipf = ZipfSampler::new(config.table_size, config.zipf_exponent);
        let drifts = (0..config.num_tables)
            .map(|t| {
                AffinityDrift::new(
                    config.drift,
                    config.table_size,
                    config.seed.wrapping_add(t as u64 * 1000),
                )
            })
            .collect();
        let mut weight_rng = StdRng::seed_from_u64(config.seed.wrapping_mul(77).wrapping_add(5));
        let dense_weights = (0..config.dense_dim)
            .map(|_| weight_rng.gen_range(-0.5..0.5))
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            zipf,
            drifts,
            dense_weights,
            rng,
        }
    }

    /// The workload configuration.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The per-table affinity drift processes (ground truth).
    #[must_use]
    pub fn drifts(&self) -> &[AffinityDrift] {
        &self.drifts
    }

    /// Map a popularity rank to a concrete ID at a point in time. The mapping rotates every
    /// `popularity_rotation_minutes`, which is how emerging items become popular.
    #[must_use]
    pub fn rank_to_id(&self, rank: usize, time_minutes: f64) -> usize {
        let rotations = (time_minutes / self.config.popularity_rotation_minutes).floor() as usize;
        (rank + rotations.wrapping_mul(self.config.rotation_step)) % self.config.table_size
    }

    /// Ground-truth click probability of a sample at a point in time.
    #[must_use]
    pub fn ground_truth_probability(&self, sample: &Sample, time_minutes: f64) -> f64 {
        let mut logit = self.config.click_bias;
        for (table_idx, ids) in sample.sparse.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let mean_affinity: f64 = ids
                .iter()
                .map(|&id| self.drifts[table_idx].affinity(id, time_minutes))
                .sum::<f64>()
                / ids.len() as f64;
            logit += mean_affinity;
        }
        for (w, x) in self.dense_weights.iter().zip(&sample.dense) {
            logit += w * x;
        }
        sigmoid(logit)
    }

    /// Draw one labelled sample at the given time.
    pub fn sample_at(&mut self, time_minutes: f64) -> Sample {
        let mut sparse = Vec::with_capacity(self.config.num_tables);
        for _ in 0..self.config.num_tables {
            let width = if self.config.max_multi_hot > 1 {
                self.rng.gen_range(1..=self.config.max_multi_hot)
            } else {
                1
            };
            let ids: Vec<usize> = (0..width)
                .map(|_| {
                    let rank = self.zipf.sample(&mut self.rng);
                    self.rank_to_id(rank, time_minutes)
                })
                .collect();
            sparse.push(ids);
        }
        let dense: Vec<f64> = (0..self.config.dense_dim)
            .map(|_| self.rng.gen_range(-1.0..1.0))
            .collect();
        let mut sample = Sample::new(dense, sparse, 0.0);
        let p = self.ground_truth_probability(&sample, time_minutes);
        sample.label = if self.rng.gen::<f64>() < p { 1.0 } else { 0.0 };
        sample
    }

    /// Draw a batch of labelled samples at the given time.
    pub fn batch_at(&mut self, time_minutes: f64, count: usize) -> MiniBatch {
        (0..count).map(|_| self.sample_at(time_minutes)).collect()
    }

    /// Draw a batch spread uniformly over the window `[start, start + duration)`.
    /// Returns `(timestamp_minutes, sample)` pairs in chronological order.
    pub fn window(
        &mut self,
        start_minutes: f64,
        duration_minutes: f64,
        count: usize,
    ) -> Vec<(f64, Sample)> {
        (0..count)
            .map(|i| {
                let t = start_minutes + duration_minutes * (i as f64 + 0.5) / count as f64;
                (t, self.sample_at(t))
            })
            .collect()
    }

    /// Empirical positive-label rate of a batch generated at `time_minutes` (handy for
    /// calibration tests and dataset presets).
    pub fn empirical_ctr(&mut self, time_minutes: f64, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let batch = self.batch_at(time_minutes, count);
        batch.labels().iter().sum::<f64>() / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload::new(WorkloadConfig::default())
    }

    #[test]
    fn default_config_valid() {
        assert!(WorkloadConfig::default().is_valid());
    }

    #[test]
    #[should_panic(expected = "invalid workload configuration")]
    fn invalid_config_rejected() {
        let cfg = WorkloadConfig {
            num_tables: 0,
            ..WorkloadConfig::default()
        };
        let _ = SyntheticWorkload::new(cfg);
    }

    #[test]
    fn samples_have_configured_shape() {
        let mut w = workload();
        let s = w.sample_at(0.0);
        assert_eq!(s.dense.len(), 2);
        assert_eq!(s.sparse.len(), 4);
        for ids in &s.sparse {
            assert!(!ids.is_empty() && ids.len() <= 2);
            assert!(ids.iter().all(|&id| id < 2000));
        }
        assert!(s.label == 0.0 || s.label == 1.0);
    }

    #[test]
    fn stream_is_reproducible_for_same_seed() {
        let mut a = workload();
        let mut b = workload();
        for t in [0.0, 5.0, 60.0] {
            assert_eq!(a.batch_at(t, 10), b.batch_at(t, 10));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = workload();
        let cfg = WorkloadConfig {
            seed: 999,
            ..WorkloadConfig::default()
        };
        let mut b = SyntheticWorkload::new(cfg);
        assert_ne!(a.batch_at(0.0, 20), b.batch_at(0.0, 20));
    }

    #[test]
    fn ground_truth_probability_in_unit_interval() {
        let mut w = workload();
        for t in [0.0, 17.0, 240.0] {
            let s = w.sample_at(t);
            let p = w.ground_truth_probability(&s, t);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn labels_track_ground_truth_rate() {
        let mut w = workload();
        let ctr = w.empirical_ctr(0.0, 4000);
        assert!(
            ctr > 0.05 && ctr < 0.95,
            "ctr {ctr} should be non-degenerate"
        );
        assert_eq!(w.empirical_ctr(0.0, 0), 0.0);
    }

    #[test]
    fn popularity_rotation_changes_hot_ids() {
        let w = workload();
        let before = w.rank_to_id(0, 0.0);
        let after = w.rank_to_id(0, 31.0);
        assert_ne!(
            before, after,
            "hot id should move after one rotation period"
        );
        // Within one rotation period the mapping is stable.
        assert_eq!(w.rank_to_id(0, 0.0), w.rank_to_id(0, 29.0));
    }

    #[test]
    fn window_timestamps_monotone_and_in_range() {
        let mut w = workload();
        let win = w.window(100.0, 10.0, 50);
        assert_eq!(win.len(), 50);
        let mut prev = 100.0;
        for (t, _) in &win {
            assert!(*t >= prev);
            assert!(*t < 110.0);
            prev = *t;
        }
    }

    #[test]
    fn drift_makes_ground_truth_change_over_time() {
        let mut w = workload();
        // Take samples at t=0 and evaluate their ground-truth probability at t=0 and much
        // later; with drift enabled the probabilities must differ appreciably on average.
        let batch = w.batch_at(0.0, 200);
        let mut total_change = 0.0;
        for s in batch.iter() {
            total_change +=
                (w.ground_truth_probability(s, 0.0) - w.ground_truth_probability(s, 120.0)).abs();
        }
        assert!(
            total_change / 200.0 > 0.02,
            "drift too small: {}",
            total_change / 200.0
        );
    }

    #[test]
    fn stationary_workload_does_not_drift() {
        let cfg = WorkloadConfig {
            drift: DriftConfig::stationary(),
            ..WorkloadConfig::default()
        };
        let mut w = SyntheticWorkload::new(cfg);
        let batch = w.batch_at(0.0, 100);
        for s in batch.iter() {
            let a = w.ground_truth_probability(s, 0.0);
            let b = w.ground_truth_probability(s, 10_000.0);
            assert!((a - b).abs() < 1e-12);
        }
    }
}
