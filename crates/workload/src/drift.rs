//! Concept drift: the non-stationary ground truth that makes freshness matter.
//!
//! The whole premise of LiveUpdate is that recommendation quality decays when the served
//! model lags behind the data distribution (paper Fig. 3b: accuracy declines between
//! updates and recovers sharply after one). [`DriftConfig`] and [`AffinityDrift`] provide a
//! controllable stand-in for the production non-stationarity:
//!
//! * every embedding ID has a latent *affinity* that follows a slow sinusoid with a
//!   per-ID phase (preference rotation), and
//! * a configurable fraction of IDs are *emerging*: their affinity ramps in over time from
//!   zero (new items/trends the stale model has never seen).
//!
//! A model trained on data up to time `t₀` therefore mispredicts data at `t₀ + Δ`
//! proportionally to the drift the configuration injects.

use serde::{Deserialize, Serialize};

/// Parameters of the drifting ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Period (minutes) of the slow affinity rotation. Smaller = faster drift.
    pub rotation_period_minutes: f64,
    /// Scale of each ID's affinity contribution to the click logit.
    pub affinity_scale: f64,
    /// Fraction of IDs (per table) treated as emerging items whose affinity ramps in.
    pub emerging_fraction: f64,
    /// Time (minutes) an emerging item takes to reach full affinity.
    pub emerging_ramp_minutes: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            rotation_period_minutes: 240.0,
            affinity_scale: 1.5,
            emerging_fraction: 0.1,
            emerging_ramp_minutes: 60.0,
        }
    }
}

impl DriftConfig {
    /// A configuration with no drift at all: affinities are constant in time.
    #[must_use]
    pub fn stationary() -> Self {
        Self {
            rotation_period_minutes: f64::INFINITY,
            affinity_scale: 1.5,
            emerging_fraction: 0.0,
            emerging_ramp_minutes: 1.0,
        }
    }

    /// Validate the configuration.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.rotation_period_minutes > 0.0
            && self.affinity_scale.is_finite()
            && (0.0..=1.0).contains(&self.emerging_fraction)
            && self.emerging_ramp_minutes > 0.0
    }
}

/// Deterministic per-ID affinity process for one embedding table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityDrift {
    config: DriftConfig,
    table_size: usize,
    /// Seed mixed into the per-ID phase/base so different tables drift differently.
    table_seed: u64,
}

impl AffinityDrift {
    /// Create the affinity process for a table of `table_size` rows.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `table_size == 0`.
    #[must_use]
    pub fn new(config: DriftConfig, table_size: usize, table_seed: u64) -> Self {
        assert!(config.is_valid(), "invalid drift configuration");
        assert!(table_size > 0, "table size must be positive");
        Self {
            config,
            table_size,
            table_seed,
        }
    }

    /// The drift configuration.
    #[must_use]
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Number of rows this process covers.
    #[must_use]
    pub fn table_size(&self) -> usize {
        self.table_size
    }

    /// Deterministic pseudo-random value in `[0, 1)` derived from the ID and table seed.
    fn hash_unit(&self, id: usize, salt: u64) -> f64 {
        let mut x = (id as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.table_seed.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        // SplitMix64 finaliser.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether an ID is an emerging item under this configuration.
    #[must_use]
    pub fn is_emerging(&self, id: usize) -> bool {
        self.hash_unit(id, 1) < self.config.emerging_fraction
    }

    /// Latent affinity of `id` at `time_minutes`. Bounded by `affinity_scale` in absolute
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `id >= table_size`.
    #[must_use]
    pub fn affinity(&self, id: usize, time_minutes: f64) -> f64 {
        assert!(
            id < self.table_size,
            "id {id} out of bounds ({})",
            self.table_size
        );
        let base = 2.0 * self.hash_unit(id, 2) - 1.0; // static component in [-1, 1]
        let phase = self.hash_unit(id, 3) * std::f64::consts::TAU;
        let rotation = if self.config.rotation_period_minutes.is_finite() {
            (time_minutes / self.config.rotation_period_minutes * std::f64::consts::TAU + phase)
                .sin()
        } else {
            phase.sin()
        };
        // Blend a static preference with the rotating (drifting) component.
        let mut value = 0.4 * base + 0.6 * rotation;
        if self.is_emerging(id) {
            // Emerging items ramp in linearly and then keep drifting like everyone else.
            let ramp = (time_minutes / self.config.emerging_ramp_minutes).clamp(0.0, 1.0);
            value *= ramp;
        }
        value * self.config.affinity_scale
    }

    /// Mean absolute affinity change between two times, averaged over a deterministic
    /// sample of IDs. This is the "how much did the world move?" measure used to calibrate
    /// update-ratio experiments.
    #[must_use]
    pub fn mean_shift(&self, from_minutes: f64, to_minutes: f64, sample: usize) -> f64 {
        let sample = sample.clamp(1, self.table_size);
        let stride = (self.table_size / sample).max(1);
        let ids: Vec<usize> = (0..self.table_size).step_by(stride).take(sample).collect();
        let total: f64 = ids
            .iter()
            .map(|&id| (self.affinity(id, to_minutes) - self.affinity(id, from_minutes)).abs())
            .sum();
        total / ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_config_valid() {
        assert!(DriftConfig::default().is_valid());
        assert!(DriftConfig::stationary().is_valid());
    }

    #[test]
    fn invalid_configs_detected() {
        let c = DriftConfig {
            rotation_period_minutes: 0.0,
            ..DriftConfig::default()
        };
        assert!(!c.is_valid());
        let c = DriftConfig {
            emerging_fraction: 1.5,
            ..DriftConfig::default()
        };
        assert!(!c.is_valid());
        let c = DriftConfig {
            emerging_ramp_minutes: -1.0,
            ..DriftConfig::default()
        };
        assert!(!c.is_valid());
    }

    #[test]
    #[should_panic(expected = "table size must be positive")]
    fn zero_table_rejected() {
        let _ = AffinityDrift::new(DriftConfig::default(), 0, 0);
    }

    #[test]
    fn affinity_is_deterministic_and_bounded() {
        let d = AffinityDrift::new(DriftConfig::default(), 1000, 7);
        for id in (0..1000).step_by(37) {
            for t in [0.0, 10.0, 100.0, 1000.0] {
                let a = d.affinity(id, t);
                let b = d.affinity(id, t);
                assert_eq!(a, b, "affinity must be deterministic");
                assert!(a.abs() <= d.config().affinity_scale + 1e-12);
            }
        }
    }

    #[test]
    fn stationary_config_never_drifts() {
        let d = AffinityDrift::new(DriftConfig::stationary(), 500, 3);
        for id in (0..500).step_by(13) {
            let a0 = d.affinity(id, 0.0);
            let a1 = d.affinity(id, 10_000.0);
            assert!((a0 - a1).abs() < 1e-12);
        }
        assert!(d.mean_shift(0.0, 10_000.0, 100) < 1e-12);
    }

    #[test]
    fn drifting_config_moves_over_time() {
        let d = AffinityDrift::new(DriftConfig::default(), 2000, 11);
        // Over a quarter rotation the world should move noticeably.
        let shift = d.mean_shift(0.0, 60.0, 500);
        assert!(shift > 0.05, "mean shift {shift} too small");
        // Over a very short horizon it should move much less.
        let small = d.mean_shift(0.0, 1.0, 500);
        assert!(small < shift);
    }

    #[test]
    fn emerging_items_start_suppressed() {
        let cfg = DriftConfig {
            emerging_fraction: 0.5,
            ..DriftConfig::default()
        };
        let d = AffinityDrift::new(cfg, 4000, 5);
        let emerging: Vec<usize> = (0..4000).filter(|&id| d.is_emerging(id)).collect();
        assert!(!emerging.is_empty());
        // Roughly half the IDs should be emerging.
        let frac = emerging.len() as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.1, "emerging fraction {frac}");
        // At t=0 emerging items have zero affinity; later they do not (on average).
        let at_zero: f64 = emerging
            .iter()
            .take(100)
            .map(|&id| d.affinity(id, 0.0).abs())
            .sum();
        assert!(at_zero < 1e-9);
        let later: f64 = emerging
            .iter()
            .take(100)
            .map(|&id| d.affinity(id, 120.0).abs())
            .sum();
        assert!(later > 0.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_affinity_bounded(id in 0usize..500, t in 0.0f64..5000.0, seed in 0u64..50) {
            let d = AffinityDrift::new(DriftConfig::default(), 500, seed);
            prop_assert!(d.affinity(id, t).abs() <= d.config().affinity_scale + 1e-12);
        }

        #[test]
        fn prop_mean_shift_nonnegative(t1 in 0.0f64..1000.0, t2 in 0.0f64..1000.0) {
            let d = AffinityDrift::new(DriftConfig::default(), 300, 1);
            prop_assert!(d.mean_shift(t1, t2, 50) >= 0.0);
        }
    }
}
