//! Request-arrival model for the inference cluster.
//!
//! The paper's utilisation/power figures (Fig. 4, Fig. 5, Fig. 18) are driven by a diurnal
//! traffic pattern: load is high in the evening, low at night, and the sustained rate is on
//! the order of 100 million requests per 5-minute window. [`ArrivalModel`] reproduces that
//! shape with a configurable base rate, diurnal amplitude and short-term burstiness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Diurnal + bursty arrival-rate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Mean requests per minute over a whole day.
    pub base_rate_per_minute: f64,
    /// Relative amplitude of the diurnal (24-hour period) modulation, in `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which traffic peaks.
    pub peak_hour: f64,
    /// Relative amplitude of uniform short-term noise applied per query of the rate.
    pub burst_amplitude: f64,
}

impl Default for ArrivalModel {
    fn default() -> Self {
        Self {
            // Scaled-down stand-in for the paper's ~20M requests/minute production load.
            base_rate_per_minute: 20_000.0,
            diurnal_amplitude: 0.45,
            peak_hour: 20.0,
            burst_amplitude: 0.1,
        }
    }
}

impl ArrivalModel {
    /// Deterministic (noise-free) arrival rate at an absolute time expressed in minutes
    /// since midnight of day 0. The rate is periodic with a 24-hour period.
    #[must_use]
    pub fn rate_at(&self, time_minutes: f64) -> f64 {
        let hour = (time_minutes / 60.0).rem_euclid(24.0);
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.cos();
        (self.base_rate_per_minute * diurnal).max(0.0)
    }

    /// Arrival rate with burst noise applied, drawn from the supplied RNG.
    pub fn noisy_rate_at<R: Rng + ?Sized>(&self, time_minutes: f64, rng: &mut R) -> f64 {
        let noise = 1.0 + rng.gen_range(-self.burst_amplitude..=self.burst_amplitude);
        (self.rate_at(time_minutes) * noise).max(0.0)
    }

    /// Expected number of requests in the window `[start, start + duration)` minutes,
    /// integrated numerically at one-minute resolution.
    #[must_use]
    pub fn requests_in_window(&self, start_minutes: f64, duration_minutes: f64) -> f64 {
        if duration_minutes <= 0.0 {
            return 0.0;
        }
        let steps = duration_minutes.ceil() as usize;
        let dt = duration_minutes / steps as f64;
        (0..steps)
            .map(|i| self.rate_at(start_minutes + (i as f64 + 0.5) * dt) * dt)
            .sum()
    }

    /// Normalised load (rate / peak rate) at a time, in `[0, 1]`. Useful as a utilisation
    /// driver for the power model.
    #[must_use]
    pub fn normalized_load_at(&self, time_minutes: f64) -> f64 {
        let peak = self.base_rate_per_minute * (1.0 + self.diurnal_amplitude);
        if peak <= 0.0 {
            return 0.0;
        }
        (self.rate_at(time_minutes) / peak).clamp(0.0, 1.0)
    }
}

/// Exact sampler of the inhomogeneous Poisson process whose intensity is
/// [`ArrivalModel::rate_at`], via Ogata thinning: candidate arrivals are drawn from a
/// homogeneous process at the peak rate and accepted with probability
/// `rate_at(t) / peak`. Arrival times are in simulated minutes and strictly increasing;
/// the stream is deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    model: ArrivalModel,
    rng: StdRng,
    time_minutes: f64,
    /// Upper bound of the deterministic rate: `base * (1 + diurnal_amplitude)`.
    rate_cap: f64,
}

impl PoissonArrivals {
    /// Start the process at `start_minutes` (simulated minutes since midnight of day 0).
    ///
    /// # Panics
    ///
    /// Panics if the model's peak rate is not positive (the process would never fire).
    #[must_use]
    pub fn new(model: ArrivalModel, start_minutes: f64, seed: u64) -> Self {
        let rate_cap = model.base_rate_per_minute * (1.0 + model.diurnal_amplitude);
        assert!(
            rate_cap > 0.0 && rate_cap.is_finite(),
            "arrival model peak rate must be positive and finite, got {rate_cap}"
        );
        Self {
            model,
            rng: StdRng::seed_from_u64(seed),
            time_minutes: start_minutes,
            rate_cap,
        }
    }

    /// The simulated time of the most recent arrival (or the start time before any).
    #[must_use]
    pub fn time_minutes(&self) -> f64 {
        self.time_minutes
    }

    /// Advance to and return the next arrival time in simulated minutes.
    pub fn next_arrival_minutes(&mut self) -> f64 {
        loop {
            // Exponential interarrival at the cap rate; `gen` is in [0, 1) so the
            // argument of `ln` stays in (0, 1].
            let u: f64 = self.rng.gen();
            self.time_minutes += -(1.0 - u).ln() / self.rate_cap;
            let accept: f64 = self.rng.gen();
            if accept * self.rate_cap <= self.model.rate_at(self.time_minutes) {
                return self.time_minutes;
            }
        }
    }
}

/// Maps a [`PoissonArrivals`] stream onto the wall clock for an open-loop load
/// generator: simulated time is compressed by `sim_minutes_per_wall_second`, so one
/// diurnal day can be replayed in seconds while interarrival gaps keep their Poisson
/// statistics. This is the `workload → real-time pacing` bridge the serving runtime's
/// load generator is driven by.
#[derive(Debug, Clone)]
pub struct RealTimePacer {
    arrivals: PoissonArrivals,
    origin_minutes: f64,
    sim_minutes_per_wall_second: f64,
}

impl RealTimePacer {
    /// Pace `arrivals` at `sim_minutes_per_wall_second` of compression.
    ///
    /// # Panics
    ///
    /// Panics if the compression factor is not positive.
    #[must_use]
    pub fn new(arrivals: PoissonArrivals, sim_minutes_per_wall_second: f64) -> Self {
        assert!(
            sim_minutes_per_wall_second > 0.0 && sim_minutes_per_wall_second.is_finite(),
            "time compression must be positive and finite"
        );
        Self {
            origin_minutes: arrivals.time_minutes(),
            arrivals,
            sim_minutes_per_wall_second,
        }
    }

    /// A pacer whose *mean* wall-clock rate at the model's base rate is `target_qps`:
    /// the compression factor is chosen so `base_rate_per_minute` simulated arrivals per
    /// simulated minute map to `target_qps` arrivals per wall second (the diurnal
    /// modulation then swings the realised rate around that mean).
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is not positive or the model's base rate is not positive.
    #[must_use]
    pub fn for_target_qps(
        model: ArrivalModel,
        target_qps: f64,
        start_minutes: f64,
        seed: u64,
    ) -> Self {
        assert!(target_qps > 0.0, "target QPS must be positive");
        assert!(
            model.base_rate_per_minute > 0.0,
            "base rate must be positive"
        );
        let compression = target_qps / model.base_rate_per_minute;
        Self::new(
            PoissonArrivals::new(model, start_minutes, seed),
            compression,
        )
    }

    /// Simulated minutes that elapse per wall-clock second.
    #[must_use]
    pub fn sim_minutes_per_wall_second(&self) -> f64 {
        self.sim_minutes_per_wall_second
    }

    /// Next arrival: `(wall_offset, sim_minutes)`, where `wall_offset` is the duration
    /// since the pacer's start at which the request should be released, and
    /// `sim_minutes` is the arrival's simulated timestamp (what the serving path treats
    /// as stream time). Wall offsets are strictly increasing; an open-loop generator
    /// sleeps until each offset and never waits for responses.
    pub fn next_arrival(&mut self) -> (Duration, f64) {
        let sim_t = self.arrivals.next_arrival_minutes();
        let wall_seconds = (sim_t - self.origin_minutes) / self.sim_minutes_per_wall_second;
        (Duration::from_secs_f64(wall_seconds.max(0.0)), sim_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_peaks_at_peak_hour() {
        let m = ArrivalModel::default();
        let peak_rate = m.rate_at(m.peak_hour * 60.0);
        for hour in 0..24 {
            assert!(m.rate_at(hour as f64 * 60.0) <= peak_rate + 1e-9);
        }
    }

    #[test]
    fn rate_is_periodic_over_24h() {
        let m = ArrivalModel::default();
        for t in [0.0, 123.0, 456.0, 1000.0] {
            assert!((m.rate_at(t) - m.rate_at(t + 24.0 * 60.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn trough_is_lower_than_peak() {
        let m = ArrivalModel::default();
        let peak = m.rate_at(m.peak_hour * 60.0);
        let trough = m.rate_at((m.peak_hour + 12.0) * 60.0);
        assert!(trough < peak * 0.7);
        assert!(trough > 0.0);
    }

    #[test]
    fn requests_in_window_scales_with_duration() {
        let m = ArrivalModel::default();
        let five = m.requests_in_window(600.0, 5.0);
        let ten = m.requests_in_window(600.0, 10.0);
        assert!(ten > five * 1.5);
        assert_eq!(m.requests_in_window(0.0, 0.0), 0.0);
        assert_eq!(m.requests_in_window(0.0, -5.0), 0.0);
    }

    #[test]
    fn noisy_rate_within_burst_bounds() {
        let m = ArrivalModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let base = m.rate_at(100.0);
        for _ in 0..100 {
            let noisy = m.noisy_rate_at(100.0, &mut rng);
            assert!(noisy >= base * (1.0 - m.burst_amplitude) - 1e-9);
            assert!(noisy <= base * (1.0 + m.burst_amplitude) + 1e-9);
        }
    }

    #[test]
    fn normalized_load_in_unit_interval() {
        let m = ArrivalModel::default();
        for t in 0..(24 * 60) {
            let l = m.normalized_load_at(t as f64);
            assert!((0.0..=1.0).contains(&l));
        }
        assert!((m.normalized_load_at(m.peak_hour * 60.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_arrivals_are_strictly_increasing_and_deterministic() {
        let model = ArrivalModel::default();
        let mut a = PoissonArrivals::new(model.clone(), 600.0, 42);
        let mut b = PoissonArrivals::new(model, 600.0, 42);
        let mut last = 600.0;
        for _ in 0..500 {
            let t = a.next_arrival_minutes();
            assert!(
                t > last,
                "arrival times must strictly increase: {t} after {last}"
            );
            assert_eq!(t, b.next_arrival_minutes(), "same seed, same stream");
            last = t;
        }
        assert_eq!(a.time_minutes(), last);
    }

    #[test]
    fn poisson_arrival_count_tracks_expected_window_volume() {
        // Thinning must reproduce the model's integrated rate: count arrivals in a
        // 5-minute evening window and compare with requests_in_window.
        let model = ArrivalModel {
            base_rate_per_minute: 2_000.0,
            ..ArrivalModel::default()
        };
        let start = model.peak_hour * 60.0;
        let expected = model.requests_in_window(start, 5.0);
        let mut arrivals = PoissonArrivals::new(model, start, 7);
        let mut count = 0u64;
        while arrivals.next_arrival_minutes() < start + 5.0 {
            count += 1;
        }
        let rel_err = (count as f64 - expected).abs() / expected;
        assert!(
            rel_err < 0.05,
            "arrival count {count} should be within 5% of expected {expected:.0}"
        );
    }

    #[test]
    fn thinning_respects_diurnal_shape() {
        // Peak-hour windows must see more arrivals than trough-hour windows.
        let model = ArrivalModel {
            base_rate_per_minute: 1_000.0,
            ..ArrivalModel::default()
        };
        let count_in = |start: f64, seed: u64| {
            let mut arr = PoissonArrivals::new(model.clone(), start, seed);
            let mut n = 0u64;
            while arr.next_arrival_minutes() < start + 10.0 {
                n += 1;
            }
            n
        };
        let peak = count_in(model.peak_hour * 60.0, 3);
        let trough = count_in((model.peak_hour + 12.0) * 60.0, 3);
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak window ({peak}) must clearly exceed trough window ({trough})"
        );
    }

    #[test]
    fn pacer_offsets_increase_and_compress_time() {
        let model = ArrivalModel {
            diurnal_amplitude: 0.0, // constant rate: wall QPS equals the target exactly
            ..ArrivalModel::default()
        };
        let mut pacer = RealTimePacer::for_target_qps(model, 500.0, 0.0, 11);
        let mut last = Duration::ZERO;
        let mut final_offset = Duration::ZERO;
        let n = 2_000;
        for _ in 0..n {
            let (offset, sim_t) = pacer.next_arrival();
            assert!(offset >= last, "wall offsets must be non-decreasing");
            assert!(sim_t > 0.0);
            last = offset;
            final_offset = offset;
        }
        // 2000 arrivals at 500 QPS should span ~4 wall seconds (±15% sampling noise).
        let secs = final_offset.as_secs_f64();
        assert!(
            (3.4..=4.6).contains(&secs),
            "2000 arrivals at 500 QPS took {secs:.2}s of wall time"
        );
    }

    #[test]
    fn pacer_sim_time_matches_compression() {
        let model = ArrivalModel::default();
        let qps = 100.0;
        let mut pacer = RealTimePacer::for_target_qps(model.clone(), qps, 300.0, 5);
        let compression = pacer.sim_minutes_per_wall_second();
        assert!((compression - qps / model.base_rate_per_minute).abs() < 1e-12);
        let (offset, sim_t) = pacer.next_arrival();
        // wall offset and sim time are consistent under the compression factor.
        let reconstructed = (sim_t - 300.0) / compression;
        assert!((offset.as_secs_f64() - reconstructed).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target QPS must be positive")]
    fn pacer_rejects_nonpositive_qps() {
        let _ = RealTimePacer::for_target_qps(ArrivalModel::default(), 0.0, 0.0, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_rate_nonnegative(base in 0.0f64..1e6, amp in 0.0f64..1.0, peak in 0.0f64..24.0, t in 0.0f64..10_000.0) {
            let m = ArrivalModel {
                base_rate_per_minute: base,
                diurnal_amplitude: amp,
                peak_hour: peak,
                burst_amplitude: 0.0,
            };
            prop_assert!(m.rate_at(t) >= 0.0);
            prop_assert!(m.normalized_load_at(t) >= 0.0);
        }
    }
}
