//! Request-arrival model for the inference cluster.
//!
//! The paper's utilisation/power figures (Fig. 4, Fig. 5, Fig. 18) are driven by a diurnal
//! traffic pattern: load is high in the evening, low at night, and the sustained rate is on
//! the order of 100 million requests per 5-minute window. [`ArrivalModel`] reproduces that
//! shape with a configurable base rate, diurnal amplitude and short-term burstiness.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Diurnal + bursty arrival-rate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalModel {
    /// Mean requests per minute over a whole day.
    pub base_rate_per_minute: f64,
    /// Relative amplitude of the diurnal (24-hour period) modulation, in `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which traffic peaks.
    pub peak_hour: f64,
    /// Relative amplitude of uniform short-term noise applied per query of the rate.
    pub burst_amplitude: f64,
}

impl Default for ArrivalModel {
    fn default() -> Self {
        Self {
            // Scaled-down stand-in for the paper's ~20M requests/minute production load.
            base_rate_per_minute: 20_000.0,
            diurnal_amplitude: 0.45,
            peak_hour: 20.0,
            burst_amplitude: 0.1,
        }
    }
}

impl ArrivalModel {
    /// Deterministic (noise-free) arrival rate at an absolute time expressed in minutes
    /// since midnight of day 0. The rate is periodic with a 24-hour period.
    #[must_use]
    pub fn rate_at(&self, time_minutes: f64) -> f64 {
        let hour = (time_minutes / 60.0).rem_euclid(24.0);
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.cos();
        (self.base_rate_per_minute * diurnal).max(0.0)
    }

    /// Arrival rate with burst noise applied, drawn from the supplied RNG.
    pub fn noisy_rate_at<R: Rng + ?Sized>(&self, time_minutes: f64, rng: &mut R) -> f64 {
        let noise = 1.0 + rng.gen_range(-self.burst_amplitude..=self.burst_amplitude);
        (self.rate_at(time_minutes) * noise).max(0.0)
    }

    /// Expected number of requests in the window `[start, start + duration)` minutes,
    /// integrated numerically at one-minute resolution.
    #[must_use]
    pub fn requests_in_window(&self, start_minutes: f64, duration_minutes: f64) -> f64 {
        if duration_minutes <= 0.0 {
            return 0.0;
        }
        let steps = duration_minutes.ceil() as usize;
        let dt = duration_minutes / steps as f64;
        (0..steps)
            .map(|i| self.rate_at(start_minutes + (i as f64 + 0.5) * dt) * dt)
            .sum()
    }

    /// Normalised load (rate / peak rate) at a time, in `[0, 1]`. Useful as a utilisation
    /// driver for the power model.
    #[must_use]
    pub fn normalized_load_at(&self, time_minutes: f64) -> f64 {
        let peak = self.base_rate_per_minute * (1.0 + self.diurnal_amplitude);
        if peak <= 0.0 {
            return 0.0;
        }
        (self.rate_at(time_minutes) / peak).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_peaks_at_peak_hour() {
        let m = ArrivalModel::default();
        let peak_rate = m.rate_at(m.peak_hour * 60.0);
        for hour in 0..24 {
            assert!(m.rate_at(hour as f64 * 60.0) <= peak_rate + 1e-9);
        }
    }

    #[test]
    fn rate_is_periodic_over_24h() {
        let m = ArrivalModel::default();
        for t in [0.0, 123.0, 456.0, 1000.0] {
            assert!((m.rate_at(t) - m.rate_at(t + 24.0 * 60.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn trough_is_lower_than_peak() {
        let m = ArrivalModel::default();
        let peak = m.rate_at(m.peak_hour * 60.0);
        let trough = m.rate_at((m.peak_hour + 12.0) * 60.0);
        assert!(trough < peak * 0.7);
        assert!(trough > 0.0);
    }

    #[test]
    fn requests_in_window_scales_with_duration() {
        let m = ArrivalModel::default();
        let five = m.requests_in_window(600.0, 5.0);
        let ten = m.requests_in_window(600.0, 10.0);
        assert!(ten > five * 1.5);
        assert_eq!(m.requests_in_window(0.0, 0.0), 0.0);
        assert_eq!(m.requests_in_window(0.0, -5.0), 0.0);
    }

    #[test]
    fn noisy_rate_within_burst_bounds() {
        let m = ArrivalModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let base = m.rate_at(100.0);
        for _ in 0..100 {
            let noisy = m.noisy_rate_at(100.0, &mut rng);
            assert!(noisy >= base * (1.0 - m.burst_amplitude) - 1e-9);
            assert!(noisy <= base * (1.0 + m.burst_amplitude) + 1e-9);
        }
    }

    #[test]
    fn normalized_load_in_unit_interval() {
        let m = ArrivalModel::default();
        for t in 0..(24 * 60) {
            let l = m.normalized_load_at(t as f64);
            assert!((0.0..=1.0).contains(&l));
        }
        assert!((m.normalized_load_at(m.peak_hour * 60.0) - 1.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_rate_nonnegative(base in 0.0f64..1e6, amp in 0.0f64..1.0, peak in 0.0f64..24.0, t in 0.0f64..10_000.0) {
            let m = ArrivalModel {
                base_rate_per_minute: base,
                diurnal_amplitude: amp,
                peak_hour: peak,
                burst_amplitude: 0.0,
            };
            prop_assert!(m.rate_at(t) >= 0.0);
            prop_assert!(m.normalized_load_at(t) >= 0.0);
        }
    }
}
