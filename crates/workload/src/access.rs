//! Access-distribution statistics over embedding lookups.
//!
//! Paper Fig. 12 plots the CDF of embedding accesses and reports that the top 10 % of
//! indices account for 93.8 % of lookups; that skew is what the CCD-local caching and the
//! LoRA-table pruning threshold `τ_prune` are calibrated against. [`AccessHistogram`]
//! accumulates per-ID access counts and reproduces those statistics.

use serde::{Deserialize, Serialize};

/// Per-ID access counter with CDF/top-share queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl AccessHistogram {
    /// Create a histogram over `num_ids` IDs.
    ///
    /// # Panics
    ///
    /// Panics if `num_ids == 0`.
    #[must_use]
    pub fn new(num_ids: usize) -> Self {
        assert!(num_ids > 0, "histogram needs at least one id");
        Self {
            counts: vec![0; num_ids],
            total: 0,
        }
    }

    /// Number of distinct IDs tracked.
    #[must_use]
    pub fn num_ids(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded accesses.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Record one access to `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn record(&mut self, id: usize) {
        assert!(id < self.counts.len(), "id {id} out of bounds");
        self.counts[id] += 1;
        self.total += 1;
    }

    /// Record every ID of an iterator.
    pub fn record_all<I: IntoIterator<Item = usize>>(&mut self, ids: I) {
        for id in ids {
            self.record(id);
        }
    }

    /// Access count for a specific ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn count(&self, id: usize) -> u64 {
        assert!(id < self.counts.len(), "id {id} out of bounds");
        self.counts[id]
    }

    /// Fraction of accesses captured by the most-accessed `fraction` of IDs
    /// (e.g. `top_share(0.1)` → paper's 93.8 % figure). Returns `0.0` with no accesses.
    #[must_use]
    pub fn top_share(&self, fraction: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let fraction = fraction.clamp(0.0, 1.0);
        let k = ((self.counts.len() as f64) * fraction).round() as usize;
        if k == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(k).sum();
        top as f64 / self.total as f64
    }

    /// The CDF of accesses over IDs sorted from most to least accessed, sampled at
    /// `points` evenly spaced fractions of the ID space. Returns `(fraction_of_ids,
    /// cumulative_share_of_accesses)` pairs — the series plotted in paper Fig. 12.
    #[must_use]
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let frac = i as f64 / (points - 1) as f64;
                (frac, self.top_share(frac))
            })
            .collect()
    }

    /// The access-count threshold such that exactly the top `fraction` of IDs (by count)
    /// meet or exceed it. This is how LiveUpdate initialises the pruning threshold
    /// `τ_prune` to "the access frequency of the rank-10 % index" (paper §IV-C).
    #[must_use]
    pub fn threshold_for_top_fraction(&self, fraction: f64) -> u64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let k = ((self.counts.len() as f64) * fraction).round() as usize;
        if k == 0 {
            return u64::MAX;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted[k.min(sorted.len()) - 1]
    }

    /// IDs whose access count is at least `threshold`, in ascending id order.
    #[must_use]
    pub fn ids_with_count_at_least(&self, threshold: u64) -> Vec<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= threshold)
            .map(|(id, _)| id)
            .collect()
    }

    /// The `k` most-accessed ids (ties broken by ascending id), in ascending id order.
    /// Ids that were never accessed are excluded, so the result can be shorter than `k`.
    ///
    /// Unlike a count threshold, this bounds the result size even when the histogram is
    /// thinly populated: with few recorded accesses a `threshold_for_top_fraction`
    /// collapses to 1 and "count ≥ threshold" selects the *entire* touched set, which at
    /// production geometry is exactly the unbounded-memory outcome a caller sizing a
    /// cache needs to avoid.
    #[must_use]
    pub fn top_k_ids(&self, k: usize) -> Vec<usize> {
        let mut touched: Vec<(u64, usize)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(id, &c)| (c, id))
            .collect();
        touched.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        touched.truncate(k);
        let mut ids: Vec<usize> = touched.into_iter().map(|(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one id")]
    fn empty_histogram_rejected() {
        let _ = AccessHistogram::new(0);
    }

    #[test]
    fn record_and_count() {
        let mut h = AccessHistogram::new(5);
        h.record(0);
        h.record(0);
        h.record(3);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.total_accesses(), 3);
        assert_eq!(h.num_ids(), 5);
    }

    #[test]
    fn top_share_of_concentrated_accesses() {
        let mut h = AccessHistogram::new(10);
        // 90 accesses to id 0, 10 spread over the rest.
        for _ in 0..90 {
            h.record(0);
        }
        h.record_all(1..=9);
        h.record(1);
        assert!((h.top_share(0.1) - 0.9).abs() < 1e-12);
        assert!((h.top_share(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.top_share(0.0), 0.0);
    }

    #[test]
    fn top_share_empty_is_zero() {
        let h = AccessHistogram::new(4);
        assert_eq!(h.top_share(0.5), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_anchored() {
        let mut h = AccessHistogram::new(100);
        let z = ZipfSampler::new(100, 1.05);
        let mut rng = StdRng::seed_from_u64(1);
        h.record_all(z.sample_many(&mut rng, 10_000));
        let cdf = h.cdf(11);
        assert_eq!(cdf.len(), 11);
        assert_eq!(cdf[0], (0.0, 0.0));
        assert!((cdf[10].1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn zipf_access_matches_paper_skew() {
        // With the paper's skew, a large table should see ≥ 80 % of accesses on the top 10 %.
        let mut h = AccessHistogram::new(10_000);
        let z = ZipfSampler::new(10_000, 1.05);
        let mut rng = StdRng::seed_from_u64(2);
        h.record_all(z.sample_many(&mut rng, 200_000));
        let share = h.top_share(0.1);
        assert!(share > 0.75, "top-10% share {share}");
    }

    #[test]
    fn top_k_is_bounded_on_a_thin_histogram() {
        // A thinly-warmed histogram over a large id space: most touched ids have count 1,
        // so any count-threshold rule degenerates to "everything touched". top_k_ids must
        // stay bounded by k and prefer the truly hot head.
        let mut h = AccessHistogram::new(100_000);
        for id in 0..5_000 {
            h.record(id); // the long tail, one access each
        }
        for _ in 0..10 {
            h.record_all([7usize, 11, 13]); // the actual head
        }
        assert_eq!(
            h.threshold_for_top_fraction(0.01).max(1),
            1,
            "threshold collapses"
        );
        assert_eq!(
            h.ids_with_count_at_least(1).len(),
            5_000,
            "threshold rule is unbounded"
        );
        let top = h.top_k_ids(3);
        assert_eq!(top, vec![7, 11, 13]);
        assert!(
            h.top_k_ids(10_000).len() == 5_000,
            "never more than the touched set"
        );
        assert!(h.top_k_ids(0).is_empty());
        // Ties (equal counts) break deterministically by ascending id.
        assert_eq!(h.top_k_ids(5), vec![0, 1, 7, 11, 13]);
    }

    #[test]
    fn threshold_and_hot_set() {
        let mut h = AccessHistogram::new(10);
        for (id, n) in [(0usize, 50u64), (1, 30), (2, 10), (3, 5)] {
            for _ in 0..n {
                h.record(id);
            }
        }
        let thr = h.threshold_for_top_fraction(0.2);
        assert_eq!(thr, 30);
        assert_eq!(h.ids_with_count_at_least(thr), vec![0, 1]);
        assert_eq!(h.threshold_for_top_fraction(0.0), u64::MAX);
    }

    #[test]
    fn reset_clears_counts() {
        let mut h = AccessHistogram::new(3);
        h.record_all([0, 1, 2, 0]);
        h.reset();
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(h.count(0), 0);
    }
}
