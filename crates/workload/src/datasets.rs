//! Dataset presets mirroring Table II of the paper.
//!
//! Two kinds of numbers live here:
//!
//! * **Logical scale** — the sample counts and embedding-table bytes the paper reports
//!   (Avazu 0.55 GB, Criteo 1.9 GB, the TB-scale variants at 50 TB). These feed the
//!   *analytic* cost models (transfer time over 100 GbE, memory-footprint accounting) and
//!   are never allocated.
//! * **Simulation scale** — a scaled-down [`WorkloadConfig`] + DLRM shape that is actually
//!   instantiated to run accuracy experiments on a laptop while preserving the statistical
//!   properties that matter (skew, drift, multi-hot structure).

use crate::drift::DriftConfig;
use crate::synthetic::WorkloadConfig;
use liveupdate_dlrm::model::DlrmConfig;
use serde::{Deserialize, Serialize};

/// Identifier of a dataset preset used throughout the benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Avazu click-through-rate dataset (public, 32.3 M samples, 0.55 GB EMTs).
    Avazu,
    /// Criteo display-advertising dataset (public, 45.8 M samples, 1.9 GB EMTs).
    Criteo,
    /// ByteDance production trace (1.5 TB, 5 B samples, 50 TB EMTs) — simulated.
    BdTb,
    /// Avazu synthetically scaled to 50 TB of EMTs (systems-centric evaluation).
    AvazuTb,
    /// Criteo synthetically scaled to 50 TB of EMTs (systems-centric evaluation).
    CriteoTb,
    /// Production-geometry preset actually instantiated at 10⁶ rows per table: unlike
    /// the Table-II presets, the simulation scale *is* the logical scale, so embedding
    /// tables exceed any CPU last-level cache and the quantized-storage / blocked-kernel
    /// path is exercised for real.
    Prod1M,
    /// Production-geometry preset actually instantiated at 10⁷ rows per table (single
    /// table; ~1.3 GB of f64 embeddings — intended for the analytic backend and
    /// release-mode benchmarks, not debug-mode unit tests).
    Prod10M,
}

impl DatasetPreset {
    /// All presets: the paper's Table II in order, followed by the production-geometry
    /// presets whose simulation scale is their logical scale.
    #[must_use]
    pub fn all() -> [DatasetPreset; 7] {
        [
            DatasetPreset::Avazu,
            DatasetPreset::Criteo,
            DatasetPreset::BdTb,
            DatasetPreset::AvazuTb,
            DatasetPreset::CriteoTb,
            DatasetPreset::Prod1M,
            DatasetPreset::Prod10M,
        ]
    }

    /// The production-geometry presets that are instantiated at full row count
    /// (10⁶ / 10⁷ rows per table) rather than scaled down for simulation.
    #[must_use]
    pub fn production_geometry() -> [DatasetPreset; 2] {
        [DatasetPreset::Prod1M, DatasetPreset::Prod10M]
    }

    /// The three production-scale presets used in the systems experiments (Fig. 14).
    #[must_use]
    pub fn tb_scale() -> [DatasetPreset; 3] {
        [
            DatasetPreset::AvazuTb,
            DatasetPreset::CriteoTb,
            DatasetPreset::BdTb,
        ]
    }

    /// The three accuracy presets used in Table III.
    #[must_use]
    pub fn accuracy() -> [DatasetPreset; 3] {
        [
            DatasetPreset::Avazu,
            DatasetPreset::Criteo,
            DatasetPreset::BdTb,
        ]
    }

    /// Human-readable name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Avazu => "Avazu",
            DatasetPreset::Criteo => "Criteo",
            DatasetPreset::BdTb => "BD-TB",
            DatasetPreset::AvazuTb => "Avazu-TB",
            DatasetPreset::CriteoTb => "Criteo-TB",
            DatasetPreset::Prod1M => "Prod-1M",
            DatasetPreset::Prod10M => "Prod-10M",
        }
    }

    /// Full specification for this preset.
    #[must_use]
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetPreset::Avazu => DatasetSpec {
                preset: *self,
                samples: 32_300_000,
                dataset_bytes: gb(4.7),
                embedding_table_bytes: gb(0.55),
                num_sparse_fields: 21,
                drift: DriftConfig {
                    rotation_period_minutes: 360.0,
                    affinity_scale: 1.2,
                    emerging_fraction: 0.05,
                    emerging_ramp_minutes: 90.0,
                },
                sim_table_size: 2_000,
                sim_num_tables: 4,
                sim_embedding_dim: 16,
            },
            DatasetPreset::Criteo => DatasetSpec {
                preset: *self,
                samples: 45_800_000,
                dataset_bytes: gb(11.0),
                embedding_table_bytes: gb(1.9),
                num_sparse_fields: 26,
                drift: DriftConfig {
                    rotation_period_minutes: 300.0,
                    affinity_scale: 1.5,
                    emerging_fraction: 0.08,
                    emerging_ramp_minutes: 75.0,
                },
                sim_table_size: 3_000,
                sim_num_tables: 5,
                sim_embedding_dim: 16,
            },
            DatasetPreset::BdTb => DatasetSpec {
                preset: *self,
                samples: 5_000_000_000,
                dataset_bytes: tb(1.5),
                embedding_table_bytes: tb(50.0),
                num_sparse_fields: 32,
                drift: DriftConfig {
                    rotation_period_minutes: 180.0,
                    affinity_scale: 1.8,
                    emerging_fraction: 0.12,
                    emerging_ramp_minutes: 45.0,
                },
                sim_table_size: 4_000,
                sim_num_tables: 6,
                sim_embedding_dim: 16,
            },
            DatasetPreset::AvazuTb => DatasetSpec {
                preset: *self,
                samples: 5_000_000_000,
                dataset_bytes: tb(0.72),
                embedding_table_bytes: tb(50.0),
                num_sparse_fields: 21,
                drift: DriftConfig {
                    rotation_period_minutes: 360.0,
                    affinity_scale: 1.2,
                    emerging_fraction: 0.05,
                    emerging_ramp_minutes: 90.0,
                },
                sim_table_size: 2_000,
                sim_num_tables: 4,
                sim_embedding_dim: 16,
            },
            DatasetPreset::CriteoTb => DatasetSpec {
                preset: *self,
                samples: 5_000_000_000,
                dataset_bytes: tb(1.2),
                embedding_table_bytes: tb(50.0),
                num_sparse_fields: 26,
                drift: DriftConfig {
                    rotation_period_minutes: 300.0,
                    affinity_scale: 1.5,
                    emerging_fraction: 0.08,
                    emerging_ramp_minutes: 75.0,
                },
                sim_table_size: 3_000,
                sim_num_tables: 5,
                sim_embedding_dim: 16,
            },
            // For the production-geometry presets the simulation scale IS the logical
            // scale (scale_factor == 1): `embedding_table_bytes` equals exactly
            // rows × tables × dim × 8, and experiments allocate that many rows for real.
            DatasetPreset::Prod1M => DatasetSpec {
                preset: *self,
                samples: 100_000_000,
                dataset_bytes: gb(10.0),
                embedding_table_bytes: (1_000_000 * 2 * 16 * 8) as u64,
                num_sparse_fields: 2,
                drift: DriftConfig {
                    rotation_period_minutes: 240.0,
                    affinity_scale: 1.4,
                    emerging_fraction: 0.08,
                    emerging_ramp_minutes: 60.0,
                },
                sim_table_size: 1_000_000,
                sim_num_tables: 2,
                sim_embedding_dim: 16,
            },
            DatasetPreset::Prod10M => DatasetSpec {
                preset: *self,
                samples: 1_000_000_000,
                dataset_bytes: gb(100.0),
                embedding_table_bytes: (10_000_000u64) * 16 * 8,
                num_sparse_fields: 1,
                drift: DriftConfig {
                    rotation_period_minutes: 240.0,
                    affinity_scale: 1.4,
                    emerging_fraction: 0.08,
                    emerging_ramp_minutes: 60.0,
                },
                sim_table_size: 10_000_000,
                sim_num_tables: 1,
                sim_embedding_dim: 16,
            },
        }
    }
}

/// Gigabytes → bytes.
fn gb(x: f64) -> u64 {
    (x * 1e9) as u64
}

/// Terabytes → bytes.
fn tb(x: f64) -> u64 {
    (x * 1e12) as u64
}

/// Logical and simulation-scale parameters of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which preset this spec belongs to.
    pub preset: DatasetPreset,
    /// Number of interaction samples the paper reports for this dataset.
    pub samples: u64,
    /// Total raw dataset size in bytes.
    pub dataset_bytes: u64,
    /// Total embedding-table size in bytes (the quantity synchronisation cost scales with).
    pub embedding_table_bytes: u64,
    /// Number of sparse feature fields in the original dataset.
    pub num_sparse_fields: usize,
    /// Drift parameters used when this preset is run as a synthetic stream.
    pub drift: DriftConfig,
    /// Scaled-down per-table row count actually instantiated in accuracy experiments.
    pub sim_table_size: usize,
    /// Scaled-down number of embedding tables actually instantiated.
    pub sim_num_tables: usize,
    /// Embedding dimension used in simulation (the paper's tables use `d = 16`).
    pub sim_embedding_dim: usize,
}

impl DatasetSpec {
    /// The scaled-down synthetic workload for accuracy experiments on this dataset.
    #[must_use]
    pub fn workload_config(&self, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            num_tables: self.sim_num_tables,
            table_size: self.sim_table_size,
            dense_dim: 2,
            zipf_exponent: 1.05,
            max_multi_hot: 2,
            popularity_rotation_minutes: 30.0,
            rotation_step: self.sim_table_size / 97 + 1,
            drift: self.drift,
            click_bias: -0.4,
            seed,
        }
    }

    /// The scaled-down DLRM configuration matching [`DatasetSpec::workload_config`].
    #[must_use]
    pub fn dlrm_config(&self) -> DlrmConfig {
        DlrmConfig {
            table_sizes: vec![self.sim_table_size; self.sim_num_tables],
            embedding_dim: self.sim_embedding_dim,
            dense_dim: 2,
            bottom_hidden: vec![16],
            top_hidden: vec![32],
            optimizer: liveupdate_dlrm::optim::OptimizerConfig::default(),
        }
    }

    /// Ratio between the paper-scale embedding bytes and the simulated embedding bytes;
    /// used to extrapolate simulated costs back to production scale.
    #[must_use]
    pub fn scale_factor(&self) -> f64 {
        let sim_bytes = (self.sim_table_size
            * self.sim_num_tables
            * self.sim_embedding_dim
            * std::mem::size_of::<f64>()) as f64;
        self.embedding_table_bytes as f64 / sim_bytes
    }

    /// Is this one of the 50 TB systems-evaluation presets?
    #[must_use]
    pub fn is_tb_scale(&self) -> bool {
        self.embedding_table_bytes >= tb(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_listed_once() {
        let all = DatasetPreset::all();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(DatasetPreset::name).collect();
        assert_eq!(
            names,
            vec![
                "Avazu",
                "Criteo",
                "BD-TB",
                "Avazu-TB",
                "Criteo-TB",
                "Prod-1M",
                "Prod-10M"
            ]
        );
    }

    #[test]
    fn production_geometry_presets_are_full_scale() {
        for preset in DatasetPreset::production_geometry() {
            let spec = preset.spec();
            // Simulation scale is the logical scale: the analytic byte accounting and
            // the instantiated tables describe the same model.
            assert!(
                (spec.scale_factor() - 1.0).abs() < 1e-12,
                "{} scale factor {}",
                preset.name(),
                spec.scale_factor()
            );
            assert!(spec.sim_table_size >= 1_000_000);
            // Exceeds any plausible last-level cache (≥ 64 MiB of f64 embeddings).
            assert!(spec.embedding_table_bytes >= 64 * 1024 * 1024);
            assert!(!spec.is_tb_scale());
            let wl = spec.workload_config(7);
            assert!(wl.is_valid(), "{} workload invalid", preset.name());
            assert!(spec.dlrm_config().validate().is_ok());
        }
        assert_eq!(DatasetPreset::Prod1M.spec().sim_table_size, 1_000_000);
        assert_eq!(DatasetPreset::Prod10M.spec().sim_table_size, 10_000_000);
    }

    #[test]
    fn table2_sizes_match_paper() {
        assert_eq!(DatasetPreset::Avazu.spec().embedding_table_bytes, gb(0.55));
        assert_eq!(DatasetPreset::Criteo.spec().embedding_table_bytes, gb(1.9));
        assert_eq!(DatasetPreset::BdTb.spec().embedding_table_bytes, tb(50.0));
        assert_eq!(
            DatasetPreset::AvazuTb.spec().embedding_table_bytes,
            tb(50.0)
        );
        assert_eq!(
            DatasetPreset::CriteoTb.spec().embedding_table_bytes,
            tb(50.0)
        );
        assert_eq!(DatasetPreset::Avazu.spec().samples, 32_300_000);
        assert_eq!(DatasetPreset::Criteo.spec().samples, 45_800_000);
    }

    #[test]
    fn tb_scale_classification() {
        assert!(!DatasetPreset::Avazu.spec().is_tb_scale());
        assert!(!DatasetPreset::Criteo.spec().is_tb_scale());
        for p in DatasetPreset::tb_scale() {
            assert!(p.spec().is_tb_scale());
        }
    }

    #[test]
    fn accuracy_presets_are_paper_columns() {
        let names: Vec<&str> = DatasetPreset::accuracy()
            .iter()
            .map(DatasetPreset::name)
            .collect();
        assert_eq!(names, vec!["Avazu", "Criteo", "BD-TB"]);
    }

    #[test]
    fn workload_and_dlrm_configs_are_consistent() {
        for preset in DatasetPreset::all() {
            let spec = preset.spec();
            let wl = spec.workload_config(7);
            assert!(wl.is_valid(), "{} workload invalid", preset.name());
            let dlrm = spec.dlrm_config();
            assert!(
                dlrm.validate().is_ok(),
                "{} dlrm config invalid",
                preset.name()
            );
            assert_eq!(wl.num_tables, dlrm.table_sizes.len());
            assert_eq!(wl.table_size, dlrm.table_sizes[0]);
        }
    }

    #[test]
    fn scale_factor_is_large_for_tb_datasets() {
        let spec = DatasetPreset::BdTb.spec();
        assert!(spec.scale_factor() > 1e4);
        let small = DatasetPreset::Avazu.spec();
        assert!(small.scale_factor() > 1.0);
        assert!(small.scale_factor() < spec.scale_factor());
    }
}
