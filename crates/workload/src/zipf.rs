//! Zipfian sampling of embedding IDs.
//!
//! Production embedding accesses follow a power-law: the paper reports that the top 10 % of
//! indices account for 93.8 % of accesses (Fig. 12), which is what motivates both the
//! CCD-local caching of hot rows and the usage-based pruning of the LoRA table.
//! [`ZipfSampler`] draws IDs with probability proportional to `1 / rank^s` using an exact
//! inverse-CDF table, which is fast enough for the table sizes used in the experiments and
//! exactly reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples ranks `0..n` with probability `P(rank k) ∝ 1 / (k+1)^exponent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    exponent: f64,
    /// Cumulative distribution over ranks; `cdf[k]` is `P(rank <= k)`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` ranks with the given exponent (`s ≈ 1.05` matches the
    /// paper's access skew; `s = 0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be non-negative and finite"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { exponent, cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly zero ranks (never: construction forbids it), kept
    /// for API completeness alongside [`ZipfSampler::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing a given rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank {rank} out of bounds");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf entries are finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }

    /// Draw `count` ranks.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Fraction of total probability mass held by the top `fraction` of ranks — e.g.
    /// `top_share(0.1)` answers "what share of accesses hit the hottest 10 % of rows?".
    ///
    /// `fraction` is clamped to `[0, 1]`.
    #[must_use]
    pub fn top_share(&self, fraction: f64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let count = ((self.cdf.len() as f64) * fraction).round() as usize;
        if count == 0 {
            return 0.0;
        }
        self.cdf[count.min(self.cdf.len()) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 1.05);
        let sum: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.05);
    }

    #[test]
    fn probabilities_decrease_with_rank() {
        let z = ZipfSampler::new(50, 1.2);
        for k in 1..50 {
            assert!(z.probability(k) <= z.probability(k - 1) + 1e-15);
        }
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
        assert!((z.top_share(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_distribution_concentrates_on_top_ranks() {
        // With the paper's skew, the top 10 % of a large table should carry most accesses.
        let z = ZipfSampler::new(10_000, 1.05);
        let share = z.top_share(0.1);
        assert!(share > 0.75, "top-10% share {share} should be large");
        assert!(z.top_share(1.0) > 0.999_999);
        assert_eq!(z.top_share(0.0), 0.0);
    }

    #[test]
    fn sampling_respects_skew() {
        let z = ZipfSampler::new(1000, 1.05);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = z.sample_many(&mut rng, 20_000);
        let hot = samples.iter().filter(|&&r| r < 100).count() as f64 / samples.len() as f64;
        let expected = z.top_share(0.1);
        assert!(
            (hot - expected).abs() < 0.05,
            "empirical {hot} vs expected {expected}"
        );
    }

    #[test]
    fn sample_always_in_range() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_top_share_monotone(n in 1usize..500, s in 0.0f64..2.0) {
            let z = ZipfSampler::new(n, s);
            let mut prev = 0.0;
            for pct in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
                let share = z.top_share(pct);
                prop_assert!(share + 1e-12 >= prev);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&share));
                prev = share;
            }
        }

        #[test]
        fn prop_probability_normalised(n in 1usize..200, s in 0.0f64..3.0) {
            let z = ZipfSampler::new(n, s);
            let sum: f64 = (0..n).map(|k| z.probability(k)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
