//! Training/inference sample and mini-batch types.

use serde::{Deserialize, Serialize};

/// One user-item interaction: dense features, one list of categorical IDs per embedding
/// table (multi-hot), and a binary click label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Continuous features (user age, counters, …), already normalised.
    pub dense: Vec<f64>,
    /// For each embedding table, the categorical IDs active in this sample. An empty list
    /// means "feature missing" and contributes a zero vector.
    pub sparse: Vec<Vec<usize>>,
    /// Click label in `{0.0, 1.0}` (or a probability for soft labels).
    pub label: f64,
}

impl Sample {
    /// Create a sample from its parts.
    #[must_use]
    pub fn new(dense: Vec<f64>, sparse: Vec<Vec<usize>>, label: f64) -> Self {
        Self {
            dense,
            sparse,
            label,
        }
    }

    /// Number of embedding tables this sample addresses.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.sparse.len()
    }

    /// Total number of sparse IDs across all tables (lookup volume of the sample).
    #[must_use]
    pub fn num_lookups(&self) -> usize {
        self.sparse.iter().map(Vec::len).sum()
    }
}

/// A mini-batch of samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MiniBatch {
    /// The samples making up the batch.
    pub samples: Vec<Sample>,
}

impl MiniBatch {
    /// Create a batch from a vector of samples.
    #[must_use]
    pub fn new(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Number of samples in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the batch holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Labels of all samples, in order.
    #[must_use]
    pub fn labels(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Iterate over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Split into chunks of at most `chunk_size` samples (the last chunk may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    #[must_use]
    pub fn chunks(&self, chunk_size: usize) -> Vec<MiniBatch> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        self.samples
            .chunks(chunk_size)
            .map(|c| MiniBatch::new(c.to_vec()))
            .collect()
    }
}

impl FromIterator<Sample> for MiniBatch {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        MiniBatch::new(iter.into_iter().collect())
    }
}

impl Extend<Sample> for MiniBatch {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for MiniBatch {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a MiniBatch {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: f64) -> Sample {
        Sample::new(vec![0.5, 1.0], vec![vec![1, 2], vec![3]], label)
    }

    #[test]
    fn sample_accessors() {
        let s = sample(1.0);
        assert_eq!(s.num_tables(), 2);
        assert_eq!(s.num_lookups(), 3);
        assert_eq!(s.label, 1.0);
    }

    #[test]
    fn batch_len_and_labels() {
        let b = MiniBatch::new(vec![sample(1.0), sample(0.0), sample(1.0)]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.labels(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn batch_from_iterator_and_extend() {
        let mut b: MiniBatch = (0..4).map(|i| sample(i as f64 % 2.0)).collect();
        assert_eq!(b.len(), 4);
        b.extend(vec![sample(1.0)]);
        assert_eq!(b.len(), 5);
        let collected: Vec<&Sample> = (&b).into_iter().collect();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn batch_chunks_cover_all_samples() {
        let b = MiniBatch::new((0..10).map(|i| sample(i as f64)).collect());
        let chunks = b.chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(MiniBatch::len).sum::<usize>(), 10);
        assert_eq!(chunks[3].len(), 1);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn batch_chunks_zero_panics() {
        let _ = MiniBatch::default().chunks(0);
    }

    #[test]
    fn empty_batch() {
        let b = MiniBatch::default();
        assert!(b.is_empty());
        assert!(b.labels().is_empty());
    }
}
