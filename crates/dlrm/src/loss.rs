//! Binary cross-entropy loss on logits, the standard CTR-prediction objective.

/// Numerically stable sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Binary cross-entropy loss given a raw logit and a label in `[0, 1]`.
///
/// Uses the numerically stable formulation `max(x,0) - x·y + ln(1 + e^{-|x|})`.
#[must_use]
pub fn bce_with_logits(logit: f64, label: f64) -> f64 {
    logit.max(0.0) - logit * label + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_with_logits`] with respect to the logit: `sigmoid(x) − y`.
#[must_use]
pub fn bce_with_logits_grad(logit: f64, label: f64) -> f64 {
    sigmoid(logit) - label
}

/// Mean BCE loss over a slice of `(logit, label)` pairs; `0.0` for an empty slice.
#[must_use]
pub fn mean_bce_with_logits(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|&(x, y)| bce_with_logits(x, y))
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn bce_at_confident_correct_prediction_is_small() {
        assert!(bce_with_logits(10.0, 1.0) < 1e-4);
        assert!(bce_with_logits(-10.0, 0.0) < 1e-4);
    }

    #[test]
    fn bce_at_confident_wrong_prediction_is_large() {
        assert!(bce_with_logits(10.0, 0.0) > 9.0);
        assert!(bce_with_logits(-10.0, 1.0) > 9.0);
    }

    #[test]
    fn bce_matches_naive_formula_in_stable_region() {
        for &(x, y) in &[(0.5, 1.0), (-0.3, 0.0), (1.2, 0.7), (0.0, 0.5)] {
            let p = sigmoid(x);
            let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            assert!((bce_with_logits(x, y) - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let eps = 1e-6;
        for &(x, y) in &[(0.5, 1.0), (-1.5, 0.0), (2.0, 0.3)] {
            let numeric = (bce_with_logits(x + eps, y) - bce_with_logits(x - eps, y)) / (2.0 * eps);
            assert!((numeric - bce_with_logits_grad(x, y)).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_bce_empty_is_zero() {
        assert_eq!(mean_bce_with_logits(&[]), 0.0);
    }

    #[test]
    fn mean_bce_averages() {
        let pairs = [(0.0, 1.0), (0.0, 0.0)];
        let expected = (bce_with_logits(0.0, 1.0) + bce_with_logits(0.0, 0.0)) / 2.0;
        assert!((mean_bce_with_logits(&pairs) - expected).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_loss_nonnegative(x in -50.0f64..50.0, y in 0.0f64..1.0) {
            prop_assert!(bce_with_logits(x, y) >= -1e-12);
        }

        #[test]
        fn prop_sigmoid_in_unit_interval(x in -500.0f64..500.0) {
            let s = sigmoid(x);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_grad_bounded(x in -50.0f64..50.0, y in 0.0f64..1.0) {
            prop_assert!(bce_with_logits_grad(x, y).abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_loss_minimised_at_matching_logit(y in 0.05f64..0.95) {
            // The minimiser of BCE over the logit is logit = log(y/(1-y)).
            let opt = (y / (1.0 - y)).ln();
            let at_opt = bce_with_logits(opt, y);
            prop_assert!(bce_with_logits(opt + 1.0, y) >= at_opt - 1e-12);
            prop_assert!(bce_with_logits(opt - 1.0, y) >= at_opt - 1e-12);
        }
    }
}
