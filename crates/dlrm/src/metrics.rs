//! Ranking and classification metrics: AUC (AUROC), LogLoss and calibration.
//!
//! The paper's accuracy evaluation (Table III, Fig. 3b, Fig. 15) reports AUROC, the area
//! under the ROC curve, typically as *relative improvements* in percentage points over the
//! DeltaUpdate baseline. [`Auc`] is a streaming accumulator so long serving windows do not
//! need to hold every prediction in memory twice.

use serde::{Deserialize, Serialize};

/// Streaming AUC (area under the ROC curve) accumulator.
///
/// Stores `(prediction, label)` pairs and computes the exact Mann–Whitney statistic:
/// the probability that a uniformly random positive sample is ranked above a uniformly
/// random negative sample (ties count ½).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Auc {
    pairs: Vec<(f64, bool)>,
}

impl Auc {
    /// Create an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one prediction with its binary label (`label >= 0.5` counts as positive).
    pub fn record(&mut self, prediction: f64, label: f64) {
        self.pairs.push((prediction, label >= 0.5));
    }

    /// Record a batch of `(prediction, label)` pairs.
    pub fn record_all<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (p, l) in iter {
            self.record(p, l);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of positive samples recorded.
    #[must_use]
    pub fn num_positives(&self) -> usize {
        self.pairs.iter().filter(|(_, l)| *l).count()
    }

    /// Compute the AUC. Returns `None` if there is not at least one positive and one
    /// negative sample (the metric is undefined in that case).
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        let pos = self.num_positives();
        let neg = self.pairs.len() - pos;
        if pos == 0 || neg == 0 {
            return None;
        }
        // Rank-sum formulation with midpoint ranks for ties.
        let mut sorted: Vec<(f64, bool)> = self.pairs.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut rank_sum_pos = 0.0_f64;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
                j += 1;
            }
            // Samples i..=j share the same score: assign the average rank (1-based).
            let avg_rank = (i + j) as f64 / 2.0 + 1.0;
            for item in &sorted[i..=j] {
                if item.1 {
                    rank_sum_pos += avg_rank;
                }
            }
            i = j + 1;
        }
        let pos_f = pos as f64;
        let neg_f = neg as f64;
        Some((rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f))
    }

    /// Merge another accumulator into this one (e.g. across serving windows or nodes).
    pub fn merge(&mut self, other: &Auc) {
        self.pairs.extend_from_slice(&other.pairs);
    }

    /// Clear all recorded samples.
    pub fn reset(&mut self) {
        self.pairs.clear();
    }
}

/// Streaming LogLoss (mean binary cross-entropy on probabilities) accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LogLoss {
    sum: f64,
    count: usize,
}

impl LogLoss {
    /// Create an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one predicted probability and its label. The probability is clamped to
    /// `[1e-12, 1 − 1e-12]` to keep the logarithms finite.
    pub fn record(&mut self, probability: f64, label: f64) {
        let p = probability.clamp(1e-12, 1.0 - 1e-12);
        self.sum -= label * p.ln() + (1.0 - label) * (1.0 - p).ln();
        self.count += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean log loss, or `None` when empty.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LogLoss) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Classification accuracy at a fixed decision threshold.
#[must_use]
pub fn accuracy_at_threshold(pairs: &[(f64, f64)], threshold: f64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs
        .iter()
        .filter(|&&(p, l)| (p >= threshold) == (l >= 0.5))
        .count();
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn auc_perfect_ranking_is_one() {
        let mut auc = Auc::new();
        auc.record_all([(0.9, 1.0), (0.8, 1.0), (0.2, 0.0), (0.1, 0.0)]);
        assert!((auc.value().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_ranking_is_zero() {
        let mut auc = Auc::new();
        auc.record_all([(0.1, 1.0), (0.9, 0.0)]);
        assert!(auc.value().unwrap().abs() < 1e-12);
    }

    #[test]
    fn auc_random_ties_is_half() {
        let mut auc = Auc::new();
        auc.record_all([(0.5, 1.0), (0.5, 0.0), (0.5, 1.0), (0.5, 0.0)]);
        assert!((auc.value().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_undefined_for_single_class() {
        let mut auc = Auc::new();
        auc.record(0.7, 1.0);
        auc.record(0.6, 1.0);
        assert_eq!(auc.value(), None);
        assert!(!auc.is_empty());
        assert_eq!(auc.num_positives(), 2);
    }

    #[test]
    fn auc_known_mixed_case() {
        // Scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2)
        // => 3/4 = 0.75.
        let mut auc = Auc::new();
        auc.record_all([(0.8, 1.0), (0.4, 1.0), (0.6, 0.0), (0.2, 0.0)]);
        assert!((auc.value().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_merge_and_reset() {
        let mut a = Auc::new();
        a.record_all([(0.9, 1.0), (0.1, 0.0)]);
        let mut b = Auc::new();
        b.record_all([(0.8, 1.0), (0.2, 0.0)]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!((a.value().unwrap() - 1.0).abs() < 1e-12);
        a.reset();
        assert!(a.is_empty());
    }

    #[test]
    fn logloss_confident_correct_is_small() {
        let mut ll = LogLoss::new();
        ll.record(0.999, 1.0);
        ll.record(0.001, 0.0);
        assert!(ll.value().unwrap() < 0.01);
        assert_eq!(ll.len(), 2);
    }

    #[test]
    fn logloss_handles_extreme_probabilities() {
        let mut ll = LogLoss::new();
        ll.record(0.0, 1.0);
        ll.record(1.0, 0.0);
        assert!(ll.value().unwrap().is_finite());
    }

    #[test]
    fn logloss_empty_and_merge() {
        let ll = LogLoss::new();
        assert_eq!(ll.value(), None);
        assert!(ll.is_empty());
        let mut a = LogLoss::new();
        a.record(0.5, 1.0);
        let mut b = LogLoss::new();
        b.record(0.5, 0.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.value().unwrap() - (-(0.5f64.ln()))).abs() < 1e-9);
    }

    #[test]
    fn accuracy_basic() {
        let pairs = [(0.9, 1.0), (0.2, 0.0), (0.6, 0.0), (0.4, 1.0)];
        assert!((accuracy_at_threshold(&pairs, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy_at_threshold(&[], 0.5), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_auc_in_unit_interval(
            scores in proptest::collection::vec((0.0f64..1.0, 0u8..2), 4..100)
        ) {
            let mut auc = Auc::new();
            for (p, l) in &scores {
                auc.record(*p, f64::from(*l));
            }
            if let Some(v) = auc.value() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn prop_auc_invariant_to_monotone_transform(
            scores in proptest::collection::vec((0.01f64..0.99, 0u8..2), 4..60)
        ) {
            let mut raw = Auc::new();
            let mut squashed = Auc::new();
            for (p, l) in &scores {
                raw.record(*p, f64::from(*l));
                // logit is strictly monotone on (0,1) so the ranking is unchanged.
                squashed.record((p / (1.0 - p)).ln(), f64::from(*l));
            }
            match (raw.value(), squashed.value()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "definedness must agree"),
            }
        }

        #[test]
        fn prop_logloss_nonnegative(
            scores in proptest::collection::vec((0.0f64..1.0, 0u8..2), 1..50)
        ) {
            let mut ll = LogLoss::new();
            for (p, l) in &scores {
                ll.record(*p, f64::from(*l));
            }
            prop_assert!(ll.value().unwrap() >= 0.0);
        }
    }
}
