//! The full DLRM: bottom MLP, embedding tables, dot interaction, top MLP.
//!
//! [`DlrmModel`] wires the pieces of paper Fig. 1 together and exposes the operations the
//! LiveUpdate system needs:
//!
//! * `predict` / `predict_batch` — the inference path,
//! * `compute_gradients` — a full backward pass producing *row-wise sparse* embedding
//!   gradients (the input of the low-rank analysis) plus dense MLP gradients,
//! * `apply_gradients` / `train_batch` — the training-cluster path,
//! * `evaluate` — AUC/LogLoss over a batch, used by every accuracy experiment.

use crate::embedding::{EmbeddingTable, SparseGradient, StorageKind};
use crate::interaction::DotInteraction;
use crate::loss::{bce_with_logits, bce_with_logits_grad, sigmoid};
use crate::metrics::{Auc, LogLoss};
use crate::mlp::{Mlp, MlpCache, MlpGradient, MlpScratch};
use crate::optim::{OptimizerConfig, OptimizerKind};
use crate::sample::{MiniBatch, Sample};
use serde::{Deserialize, Serialize};

/// Static configuration of a DLRM instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Number of rows in each embedding table (one entry per sparse feature field).
    pub table_sizes: Vec<usize>,
    /// Embedding dimension `d` shared by every table (and the bottom-MLP output).
    pub embedding_dim: usize,
    /// Number of dense (continuous) input features.
    pub dense_dim: usize,
    /// Hidden-layer widths of the bottom MLP (input `dense_dim` and output
    /// `embedding_dim` are added automatically).
    pub bottom_hidden: Vec<usize>,
    /// Hidden-layer widths of the top MLP (input is the interaction width, output 1 is
    /// added automatically).
    pub top_hidden: Vec<usize>,
    /// Optimiser hyper-parameters.
    pub optimizer: OptimizerConfig,
}

impl DlrmConfig {
    /// A small but complete configuration used by tests, examples and the scaled-down
    /// experiment presets: `num_tables` tables of `rows_per_table` rows, embedding
    /// dimension `embedding_dim`, two dense features and one hidden layer per MLP.
    #[must_use]
    pub fn tiny(num_tables: usize, rows_per_table: usize, embedding_dim: usize) -> Self {
        Self {
            table_sizes: vec![rows_per_table; num_tables],
            embedding_dim,
            dense_dim: 2,
            bottom_hidden: vec![16],
            top_hidden: vec![32],
            optimizer: OptimizerConfig::default(),
        }
    }

    /// Number of embedding tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.table_sizes.len()
    }

    /// Width of the interaction output feeding the top MLP.
    #[must_use]
    pub fn interaction_dim(&self) -> usize {
        DotInteraction::output_dim(self.num_tables() + 1, self.embedding_dim)
    }

    /// Total number of embedding parameters across all tables.
    #[must_use]
    pub fn embedding_parameter_count(&self) -> usize {
        self.table_sizes
            .iter()
            .map(|s| s * self.embedding_dim)
            .sum()
    }

    /// Validate the configuration; returns a human-readable reason when invalid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.table_sizes.is_empty() {
            return Err("at least one embedding table is required".into());
        }
        if self.table_sizes.contains(&0) {
            return Err("embedding tables must have at least one row".into());
        }
        if self.embedding_dim == 0 {
            return Err("embedding dimension must be positive".into());
        }
        if self.dense_dim == 0 {
            return Err("dense feature dimension must be positive".into());
        }
        if !self.optimizer.is_valid() {
            return Err("optimizer configuration is invalid".into());
        }
        // Production geometries (10⁶–10⁷ rows) put `rows × dim` within a few orders of
        // magnitude of usize on 32-bit targets; reject overflowing shapes here so scenario
        // files fail with an error instead of a wrapped allocation size.
        let mut total: usize = 0;
        for &size in &self.table_sizes {
            let cells = size.checked_mul(self.embedding_dim).ok_or_else(|| {
                format!(
                    "embedding table geometry {size}x{} overflows usize",
                    self.embedding_dim
                )
            })?;
            total = total
                .checked_add(cells)
                .ok_or_else(|| "total embedding parameter count overflows usize".to_string())?;
        }
        Ok(())
    }

    /// Check that a sample's shape and sparse indices fit this model geometry — the
    /// ingest-boundary guard that keeps a malformed request from panicking a lookup deep
    /// inside a serving worker.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate_sample(&self, sample: &Sample) -> Result<(), String> {
        if sample.dense.len() != self.dense_dim {
            return Err(format!(
                "sample has {} dense features but the model expects {}",
                sample.dense.len(),
                self.dense_dim
            ));
        }
        if sample.sparse.len() != self.table_sizes.len() {
            return Err(format!(
                "sample addresses {} tables but the model has {}",
                sample.sparse.len(),
                self.table_sizes.len()
            ));
        }
        if sample.dense.iter().any(|d| !d.is_finite()) {
            return Err("sample has a non-finite dense feature".into());
        }
        for (t, ids) in sample.sparse.iter().enumerate() {
            let rows = self.table_sizes[t];
            if let Some(&bad) = ids.iter().find(|&&id| id >= rows) {
                return Err(format!(
                    "sparse index {bad} out of bounds for table {t} with {rows} rows"
                ));
            }
        }
        Ok(())
    }
}

/// Gradients produced by one backward pass over a mini-batch.
#[derive(Debug, Clone)]
pub struct BatchGradients {
    /// Mean BCE loss of the batch.
    pub loss: f64,
    /// Gradient of the bottom MLP.
    pub bottom: MlpGradient,
    /// Gradient of the top MLP.
    pub top: MlpGradient,
    /// One row-wise sparse gradient per embedding table.
    pub embeddings: Vec<SparseGradient>,
}

/// Cached activations for one sample's forward pass.
#[derive(Debug, Clone)]
struct ForwardCache {
    bottom_cache: MlpCache,
    top_cache: MlpCache,
    interaction_inputs: Vec<Vec<f64>>,
    logit: f64,
}

/// Reusable buffers for the allocation-free inference path
/// ([`DlrmModel::predict_with_scratch`]). One scratch serves any number of samples; each
/// buffer grows to the model's widest intermediate and stays there.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// Flat `(num_tables + 1) × d` buffer: bottom-MLP output, then one pooled embedding
    /// per table — the interaction layer's input laid out contiguously.
    vectors: Vec<f64>,
    /// Interaction output feeding the top MLP.
    interacted: Vec<f64>,
    /// Ping-pong buffers shared by the bottom and top MLP.
    mlp: MlpScratch,
}

/// The deep-learning recommendation model of paper Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmModel {
    config: DlrmConfig,
    tables: Vec<EmbeddingTable>,
    bottom: Mlp,
    top: Mlp,
}

impl DlrmModel {
    /// Build a model with randomly initialised parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DlrmConfig::validate`].
    #[must_use]
    pub fn new(config: DlrmConfig, seed: u64) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid DLRM configuration: {reason}");
        }
        let tables: Vec<EmbeddingTable> = config
            .table_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                EmbeddingTable::new(size, config.embedding_dim, seed.wrapping_add(i as u64 + 1))
            })
            .collect();
        let mut bottom_dims = vec![config.dense_dim];
        bottom_dims.extend_from_slice(&config.bottom_hidden);
        bottom_dims.push(config.embedding_dim);
        let mut top_dims = vec![config.interaction_dim()];
        top_dims.extend_from_slice(&config.top_hidden);
        top_dims.push(1);
        Self {
            bottom: Mlp::new(&bottom_dims, seed.wrapping_mul(31).wrapping_add(7)),
            top: Mlp::new(&top_dims, seed.wrapping_mul(37).wrapping_add(11)),
            tables,
            config,
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Borrow the embedding tables.
    #[must_use]
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Borrow the embedding tables mutably (used by update strategies that patch rows).
    pub fn tables_mut(&mut self) -> &mut [EmbeddingTable] {
        &mut self.tables
    }

    /// Borrow a single table.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn table(&self, index: usize) -> &EmbeddingTable {
        &self.tables[index]
    }

    /// Convert every embedding table to the given row storage (f64, fp16, or int8).
    ///
    /// Quantizing is lossy for the stored rows but exact for subsequently written
    /// (master-overlay) rows; MLP parameters always stay f64.
    pub fn convert_embedding_storage(&mut self, kind: StorageKind) {
        for table in &mut self.tables {
            table.convert_storage(kind);
        }
    }

    /// Row-storage kind of the embedding tables (all tables share one kind after
    /// [`Self::convert_embedding_storage`]; freshly built models are f64).
    #[must_use]
    pub fn embedding_storage_kind(&self) -> StorageKind {
        self.tables
            .first()
            .map_or(StorageKind::F64, EmbeddingTable::storage_kind)
    }

    /// Resident bytes of all embedding tables under their current storage (codes +
    /// scales + f64 master overlay) — the fig17 memory-optimization metric.
    #[must_use]
    pub fn embedding_memory_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::memory_bytes).sum()
    }

    /// Copy the `fraction` of embedding rows with the largest parameter change from
    /// `source` into this model, per table — the QuickUpdate-α% transfer rule. Returns
    /// the copied row indices per table (what an update shipment would contain).
    ///
    /// # Panics
    ///
    /// Panics if the two models have different table geometries.
    pub fn pull_top_changed_rows(&mut self, source: &DlrmModel, fraction: f64) -> Vec<Vec<usize>> {
        assert_eq!(
            self.tables.len(),
            source.tables.len(),
            "partial sync requires identical table counts"
        );
        let fraction = fraction.clamp(0.0, 1.0);
        let mut pulled = Vec::with_capacity(self.tables.len());
        for t in 0..source.tables.len() {
            assert_eq!(
                self.table(t).num_rows(),
                source.table(t).num_rows(),
                "partial sync requires identical row counts in table {t}"
            );
            assert_eq!(
                self.table(t).dim(),
                source.table(t).dim(),
                "partial sync requires identical embedding dims in table {t}"
            );
            let rows = source.table(t).num_rows();
            let k = ((rows as f64) * fraction).round() as usize;
            if k == 0 {
                pulled.push(Vec::new());
                continue;
            }
            let dim = source.table(t).dim();
            let mut src_row = vec![0.0; dim];
            let mut dst_row = vec![0.0; dim];
            let mut deltas: Vec<(usize, f64)> = (0..rows)
                .map(|i| {
                    source.table(t).row_into(i, &mut src_row);
                    self.table(t).row_into(i, &mut dst_row);
                    let d: f64 = src_row
                        .iter()
                        .zip(&dst_row)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    (i, d)
                })
                .collect();
            deltas.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let top: Vec<usize> = deltas.into_iter().take(k).map(|(i, _)| i).collect();
            for &i in &top {
                source.table(t).row_into(i, &mut src_row);
                self.tables[t].set_row(i, &src_row);
            }
            pulled.push(top);
        }
        pulled
    }

    /// Total number of trainable parameters (dense + embeddings).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.bottom.parameter_count()
            + self.top.parameter_count()
            + self
                .tables
                .iter()
                .map(EmbeddingTable::parameter_count)
                .sum::<usize>()
    }

    /// Every trainable parameter as one flat vector in the canonical order: embedding
    /// tables (row-major, table 0 first), then the bottom MLP, then the top MLP. This is
    /// the payload of a full-model shipment over the wire; [`Self::import_parameters`]
    /// is the exact inverse, so `export → import` between two models of the same
    /// geometry makes them predict identically.
    #[must_use]
    pub fn export_parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for table in &self.tables {
            table.export_rows_into(&mut out);
        }
        self.bottom.export_params(&mut out);
        self.top.export_params(&mut out);
        out
    }

    /// Overwrite every trainable parameter from the flat order of
    /// [`Self::export_parameters`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.parameter_count()` — callers shipping parameters
    /// across a trust boundary must length-check first.
    pub fn import_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.parameter_count(),
            "parameter vector length must match the model geometry"
        );
        let mut rest = params;
        for table in &mut self.tables {
            table.import_rows(&mut rest);
        }
        self.bottom.import_params(&mut rest);
        self.top.import_params(&mut rest);
        debug_assert!(rest.is_empty(), "every parameter consumed");
    }

    /// Forward pass computing the click logit, optionally overriding the pooled embedding
    /// of some tables (this is how the LiveUpdate engine injects `W_base[i] + A[i]·B`).
    fn forward_with_embeddings(&self, sample: &Sample, pooled: &[Vec<f64>]) -> ForwardCache {
        assert_eq!(
            sample.dense.len(),
            self.config.dense_dim,
            "sample dense dimension mismatch"
        );
        let (bottom_out, bottom_cache) = self.bottom.forward(&sample.dense);
        let mut interaction_inputs = Vec::with_capacity(1 + pooled.len());
        interaction_inputs.push(bottom_out);
        interaction_inputs.extend(pooled.iter().cloned());
        let interacted = DotInteraction::forward(&interaction_inputs);
        let (top_out, top_cache) = self.top.forward(&interacted);
        ForwardCache {
            bottom_cache,
            top_cache,
            interaction_inputs,
            logit: top_out[0],
        }
    }

    /// Pooled embeddings for a sample from the model's own tables.
    fn pool_embeddings(&self, sample: &Sample) -> Vec<Vec<f64>> {
        assert_eq!(
            sample.sparse.len(),
            self.tables.len(),
            "sample addresses {} tables but the model has {}",
            sample.sparse.len(),
            self.tables.len()
        );
        sample
            .sparse
            .iter()
            .zip(&self.tables)
            .map(|(ids, table)| table.pooled_lookup(ids))
            .collect()
    }

    /// Predicted click probability for one sample using the model's own embeddings.
    #[must_use]
    pub fn predict(&self, sample: &Sample) -> f64 {
        let pooled = self.pool_embeddings(sample);
        sigmoid(self.forward_with_embeddings(sample, &pooled).logit)
    }

    /// Predicted click probability with externally supplied pooled embeddings (one vector
    /// per table). Used by the serving engine when LoRA deltas are layered on top of the
    /// base table.
    ///
    /// # Panics
    ///
    /// Panics if `pooled.len()` does not match the number of tables.
    #[must_use]
    pub fn predict_with_pooled(&self, sample: &Sample, pooled: &[Vec<f64>]) -> f64 {
        assert_eq!(
            pooled.len(),
            self.tables.len(),
            "pooled embedding count mismatch"
        );
        sigmoid(self.forward_with_embeddings(sample, pooled).logit)
    }

    /// Predicted probabilities for every sample of a batch.
    #[must_use]
    pub fn predict_batch(&self, batch: &MiniBatch) -> Vec<f64> {
        batch.iter().map(|s| self.predict(s)).collect()
    }

    /// Allocation-free single-sample inference reusing caller scratch. This is the hot
    /// serving path: pooled gathers go through [`EmbeddingTable::pooled_lookup_into`]
    /// (dequant-inline, no per-lookup `Vec`s) and both MLPs run on the blocked GEMV
    /// kernel. Numerically equivalent to [`Self::predict`] up to summation order.
    ///
    /// # Panics
    ///
    /// Panics if the sample shape does not match the model (see
    /// [`DlrmConfig::validate_sample`] for the non-panicking ingest-boundary check).
    #[must_use]
    pub fn predict_with_scratch(&self, sample: &Sample, scratch: &mut InferenceScratch) -> f64 {
        let tables = &self.tables;
        self.predict_pooled_with_scratch(sample, scratch, |t, ids, out| {
            tables[t].pooled_lookup_into(ids, out)
        })
    }

    /// Like [`Self::predict_with_scratch`] but with the pooled-embedding gather supplied
    /// by the caller: `gather(table, ids, out)` must write the mean-pooled embedding of
    /// `ids` into `out`. This is how the serving snapshot layers its hot-row cache (and
    /// the LiveUpdate engine its LoRA correction) over the base tables without giving up
    /// the scratch fast path.
    ///
    /// # Panics
    ///
    /// Panics if the sample shape does not match the model.
    pub fn predict_pooled_with_scratch(
        &self,
        sample: &Sample,
        scratch: &mut InferenceScratch,
        mut gather: impl FnMut(usize, &[usize], &mut [f64]),
    ) -> f64 {
        assert_eq!(
            sample.dense.len(),
            self.config.dense_dim,
            "sample dense dimension mismatch"
        );
        assert_eq!(
            sample.sparse.len(),
            self.tables.len(),
            "sample addresses {} tables but the model has {}",
            sample.sparse.len(),
            self.tables.len()
        );
        let d = self.config.embedding_dim;
        let n = self.tables.len() + 1;
        scratch.vectors.resize(n * d, 0.0);
        let bottom_out = self.bottom.infer(&sample.dense, &mut scratch.mlp);
        scratch.vectors[..d].copy_from_slice(bottom_out);
        for (t, ids) in sample.sparse.iter().enumerate() {
            gather(t, ids, &mut scratch.vectors[(t + 1) * d..(t + 2) * d]);
        }
        DotInteraction::forward_flat_into(&scratch.vectors, n, d, &mut scratch.interacted);
        let logit = self.top.infer(&scratch.interacted, &mut scratch.mlp)[0];
        sigmoid(logit)
    }

    /// Full backward pass over a batch. Gradients are averaged over the batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or a sample's shape does not match the model.
    #[must_use]
    pub fn compute_gradients(&self, batch: &MiniBatch) -> BatchGradients {
        assert!(
            !batch.is_empty(),
            "cannot compute gradients for an empty batch"
        );
        let mut bottom_grad = self.bottom.zero_gradient();
        let mut top_grad = self.top.zero_gradient();
        let mut emb_grads: Vec<SparseGradient> = self
            .tables
            .iter()
            .map(|t| SparseGradient::new(t.dim()))
            .collect();
        let mut total_loss = 0.0;

        for sample in batch.iter() {
            let pooled = self.pool_embeddings(sample);
            let cache = self.forward_with_embeddings(sample, &pooled);
            total_loss += bce_with_logits(cache.logit, sample.label);
            let dl_dlogit = bce_with_logits_grad(cache.logit, sample.label);

            // Top MLP backward.
            let (grad_interacted, tg) = self.top.backward(&cache.top_cache, &[dl_dlogit]);
            top_grad.accumulate(&tg);

            // Interaction backward.
            let grads_vectors =
                DotInteraction::backward(&cache.interaction_inputs, &grad_interacted);

            // Bottom MLP backward (input vector 0).
            let (_, bg) = self.bottom.backward(&cache.bottom_cache, &grads_vectors[0]);
            bottom_grad.accumulate(&bg);

            // Embedding backward: pooled = mean of rows ⇒ each row gets grad / |ids|.
            for (table_idx, ids) in sample.sparse.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let grad_pooled = &grads_vectors[table_idx + 1];
                let scale = 1.0 / ids.len() as f64;
                let scaled: Vec<f64> = grad_pooled.iter().map(|g| g * scale).collect();
                for &id in ids {
                    emb_grads[table_idx].accumulate(id, &scaled);
                }
            }
        }

        let inv = 1.0 / batch.len() as f64;
        bottom_grad.scale(inv);
        top_grad.scale(inv);
        for g in &mut emb_grads {
            g.scale(inv);
        }
        BatchGradients {
            loss: total_loss * inv,
            bottom: bottom_grad,
            top: top_grad,
            embeddings: emb_grads,
        }
    }

    /// Apply previously computed gradients with the configured optimiser.
    pub fn apply_gradients(&mut self, grads: &BatchGradients) {
        let opt = self.config.optimizer;
        self.bottom
            .apply_gradient(&grads.bottom, opt.dense_learning_rate);
        self.top.apply_gradient(&grads.top, opt.dense_learning_rate);
        for (table, grad) in self.tables.iter_mut().zip(&grads.embeddings) {
            match opt.sparse_optimizer {
                OptimizerKind::Sgd => table.apply_sgd(grad, opt.sparse_learning_rate),
                OptimizerKind::RowWiseAdagrad { eps } => {
                    table.apply_adagrad(grad, opt.sparse_learning_rate, eps);
                }
            }
        }
    }

    /// Compute gradients, apply them, and return the mean loss of the batch.
    pub fn train_batch(&mut self, batch: &MiniBatch) -> f64 {
        let grads = self.compute_gradients(batch);
        let loss = grads.loss;
        self.apply_gradients(&grads);
        loss
    }

    /// Evaluate the model on a batch: returns `(AUC, mean log loss)`. The AUC is `None`
    /// when the batch contains a single class.
    #[must_use]
    pub fn evaluate(&self, batch: &MiniBatch) -> (Option<f64>, f64) {
        let mut auc = Auc::new();
        let mut ll = LogLoss::new();
        for sample in batch.iter() {
            let p = self.predict(sample);
            auc.record(p, sample.label);
            ll.record(p, sample.label);
        }
        (auc.value(), ll.value().unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> DlrmConfig {
        DlrmConfig::tiny(3, 50, 8)
    }

    fn random_sample(rng: &mut StdRng, cfg: &DlrmConfig, label: f64) -> Sample {
        let dense = (0..cfg.dense_dim)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let sparse = cfg
            .table_sizes
            .iter()
            .map(|&size| vec![rng.gen_range(0..size)])
            .collect();
        Sample::new(dense, sparse, label)
    }

    #[test]
    fn config_validation() {
        assert!(config().validate().is_ok());
        let mut bad = config();
        bad.table_sizes.clear();
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.embedding_dim = 0;
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.table_sizes[0] = 0;
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.dense_dim = 0;
        assert!(bad.validate().is_err());
        let mut bad = config();
        bad.optimizer.dense_learning_rate = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid DLRM configuration")]
    fn new_rejects_invalid_config() {
        let mut cfg = config();
        cfg.embedding_dim = 0;
        let _ = DlrmModel::new(cfg, 0);
    }

    #[test]
    fn validate_rejects_overflowing_geometry() {
        let mut cfg = config();
        cfg.table_sizes = vec![usize::MAX / 4];
        cfg.embedding_dim = 8;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("overflows"), "unexpected error: {err}");
        let mut cfg = config();
        cfg.table_sizes = vec![usize::MAX / 9; 10];
        cfg.embedding_dim = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_sample_catches_bad_shapes() {
        let cfg = config();
        let good = Sample::new(vec![0.1, 0.2], vec![vec![5], vec![7], vec![49]], 1.0);
        assert!(cfg.validate_sample(&good).is_ok());
        let bad_dense = Sample::new(vec![0.1], vec![vec![5], vec![7], vec![49]], 1.0);
        assert!(cfg.validate_sample(&bad_dense).is_err());
        let bad_tables = Sample::new(vec![0.1, 0.2], vec![vec![5]], 1.0);
        assert!(cfg.validate_sample(&bad_tables).is_err());
        let bad_index = Sample::new(vec![0.1, 0.2], vec![vec![5], vec![50], vec![0]], 1.0);
        let err = cfg.validate_sample(&bad_index).unwrap_err();
        assert!(err.contains("out of bounds"), "unexpected error: {err}");
        let bad_value = Sample::new(vec![0.1, f64::NAN], vec![vec![5], vec![7], vec![0]], 1.0);
        assert!(cfg.validate_sample(&bad_value).is_err());
    }

    #[test]
    fn scratch_prediction_matches_predict() {
        let model = DlrmModel::new(config(), 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut scratch = InferenceScratch::default();
        for _ in 0..20 {
            let s = random_sample(&mut rng, model.config(), 1.0);
            let slow = model.predict(&s);
            let fast = model.predict_with_scratch(&s, &mut scratch);
            assert!((slow - fast).abs() < 1e-12, "{slow} vs {fast}");
        }
    }

    #[test]
    fn quantized_model_predictions_track_f64() {
        use crate::embedding::StorageKind;
        let f64_model = DlrmModel::new(config(), 8);
        let mut rng = StdRng::seed_from_u64(10);
        let samples: Vec<Sample> = (0..30)
            .map(|_| random_sample(&mut rng, f64_model.config(), 1.0))
            .collect();
        for kind in [StorageKind::F16, StorageKind::I8] {
            let mut q = f64_model.clone();
            q.convert_embedding_storage(kind);
            assert_eq!(q.embedding_storage_kind(), kind);
            assert!(q.embedding_memory_bytes() < f64_model.embedding_memory_bytes());
            let mut scratch = InferenceScratch::default();
            for s in &samples {
                let exact = f64_model.predict(s);
                let quant = q.predict_with_scratch(s, &mut scratch);
                assert!(
                    (exact - quant).abs() < 0.05,
                    "{kind:?}: prediction drifted {exact} -> {quant}"
                );
            }
        }
    }

    #[test]
    fn predictions_are_probabilities() {
        let model = DlrmModel::new(config(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = random_sample(&mut rng, model.config(), 1.0);
            let p = model.predict(&s);
            assert!((0.0..=1.0).contains(&p), "prediction {p} outside [0,1]");
        }
    }

    #[test]
    fn interaction_dim_matches_top_input() {
        let cfg = config();
        assert_eq!(cfg.interaction_dim(), 4 * 8 + 4 * 3 / 2);
        let model = DlrmModel::new(cfg, 0);
        assert!(model.parameter_count() > model.config().embedding_parameter_count());
    }

    #[test]
    fn gradients_touch_only_looked_up_rows() {
        let model = DlrmModel::new(config(), 3);
        let sample = Sample::new(vec![0.1, 0.2], vec![vec![5], vec![7, 9], vec![]], 1.0);
        let grads = model.compute_gradients(&MiniBatch::new(vec![sample]));
        assert_eq!(grads.embeddings[0].touched_ids(), vec![5]);
        assert_eq!(grads.embeddings[1].touched_ids(), vec![7, 9]);
        assert!(grads.embeddings[2].is_empty());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn gradients_on_empty_batch_panic() {
        let model = DlrmModel::new(config(), 3);
        let _ = model.compute_gradients(&MiniBatch::default());
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let cfg = config();
        let mut model = DlrmModel::new(cfg.clone(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Learnable rule: label depends on whether the first table's id is < 25.
        let samples: Vec<Sample> = (0..64)
            .map(|_| {
                let id = rng.gen_range(0..50);
                let label = if id < 25 { 1.0 } else { 0.0 };
                Sample::new(
                    vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
                    vec![
                        vec![id],
                        vec![rng.gen_range(0..50)],
                        vec![rng.gen_range(0..50)],
                    ],
                    label,
                )
            })
            .collect();
        let batch = MiniBatch::new(samples);
        let initial = model.compute_gradients(&batch).loss;
        for _ in 0..60 {
            model.train_batch(&batch);
        }
        let final_loss = model.compute_gradients(&batch).loss;
        assert!(
            final_loss < initial * 0.7,
            "training should reduce loss: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn training_improves_auc_on_learnable_task() {
        let cfg = DlrmConfig::tiny(1, 40, 8);
        let mut model = DlrmModel::new(cfg.clone(), 9);
        let mut rng = StdRng::seed_from_u64(10);
        let make_batch = |rng: &mut StdRng| -> MiniBatch {
            (0..128)
                .map(|_| {
                    let id = rng.gen_range(0..40);
                    let label = if id % 2 == 0 { 1.0 } else { 0.0 };
                    Sample::new(vec![0.0, 0.0], vec![vec![id]], label)
                })
                .collect()
        };
        let train = make_batch(&mut rng);
        let test = make_batch(&mut rng);
        let (auc_before, _) = model.evaluate(&test);
        for _ in 0..80 {
            model.train_batch(&train);
        }
        let (auc_after, _) = model.evaluate(&test);
        assert!(
            auc_after.unwrap() > auc_before.unwrap().max(0.55) || auc_after.unwrap() > 0.9,
            "AUC should improve: {auc_before:?} -> {auc_after:?}"
        );
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let cfg = DlrmConfig::tiny(1, 10, 4);
        let model = DlrmModel::new(cfg, 13);
        let sample = Sample::new(vec![0.3, -0.6], vec![vec![2]], 1.0);
        let batch = MiniBatch::new(vec![sample.clone()]);
        let grads = model.compute_gradients(&batch);
        let analytic = grads.embeddings[0].get(2).unwrap().to_vec();

        let eps = 1e-6;
        for (k, &analytic_k) in analytic.iter().enumerate() {
            let mut plus = model.clone();
            plus.tables_mut()[0].row_mut(2)[k] += eps;
            let mut minus = model.clone();
            minus.tables_mut()[0].row_mut(2)[k] -= eps;
            let loss_plus = plus.compute_gradients(&batch).loss;
            let loss_minus = minus.compute_gradients(&batch).loss;
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_k).abs() < 1e-4,
                "coord {k}: numeric {numeric} vs analytic {analytic_k}"
            );
        }
    }

    #[test]
    fn predict_with_pooled_overrides_embeddings() {
        let cfg = DlrmConfig::tiny(1, 10, 4);
        let model = DlrmModel::new(cfg, 17);
        let sample = Sample::new(vec![0.0, 0.0], vec![vec![3]], 1.0);
        let base = model.predict(&sample);
        let own_pooled = vec![model.table(0).pooled_lookup(&[3])];
        let same = model.predict_with_pooled(&sample, &own_pooled);
        assert!((base - same).abs() < 1e-12);
        let different = model.predict_with_pooled(&sample, &[vec![10.0, -10.0, 10.0, -10.0]]);
        assert!(
            (different - base).abs() > 1e-9,
            "a very different embedding must change the output"
        );
    }

    #[test]
    fn parameter_export_import_round_trips_between_models() {
        let cfg = config();
        let mut source = DlrmModel::new(cfg.clone(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let batch = MiniBatch::new(
            (0..32)
                .map(|_| random_sample(&mut rng, &cfg, 1.0))
                .collect(),
        );
        // Move the source away from its initialisation so the transfer is observable.
        for _ in 0..5 {
            source.train_batch(&batch);
        }
        let params = source.export_parameters();
        assert_eq!(params.len(), source.parameter_count());

        let mut target = DlrmModel::new(cfg, 99);
        let probe = batch.samples[0].clone();
        assert!((source.predict(&probe) - target.predict(&probe)).abs() > 1e-12);
        target.import_parameters(&params);
        // Every trainable parameter moved (optimizer accumulators deliberately do not
        // ship), so predictions agree bit-for-bit and re-export is the identity.
        for sample in batch.iter() {
            assert_eq!(target.predict(sample), source.predict(sample));
        }
        assert_eq!(target.export_parameters(), params);
    }

    #[test]
    #[should_panic(expected = "parameter vector length")]
    fn import_rejects_wrong_length() {
        let mut model = DlrmModel::new(config(), 1);
        model.import_parameters(&[0.0; 3]);
    }

    #[test]
    fn evaluate_returns_auc_and_logloss() {
        let cfg = DlrmConfig::tiny(1, 10, 4);
        let model = DlrmModel::new(cfg, 21);
        let batch = MiniBatch::new(vec![
            Sample::new(vec![0.0, 0.0], vec![vec![1]], 1.0),
            Sample::new(vec![0.0, 0.0], vec![vec![2]], 0.0),
        ]);
        let (auc, ll) = model.evaluate(&batch);
        assert!(auc.is_some());
        assert!(ll > 0.0);
    }
}
