//! The DLRM dot-product feature-interaction layer.
//!
//! Given the bottom-MLP output and one pooled embedding per table — all of dimension `d` —
//! the interaction layer concatenates the input vectors themselves with every pairwise dot
//! product (paper Fig. 1; the concatenation corresponds to DLRM's `cat`+`dot` interaction
//! so the embeddings also reach the top MLP directly). The output feeds the top MLP.

/// Interaction of `n` vectors of dimension `d`: output is `[v₀, …, vₙ₋₁, ⟨vᵢ, vⱼ⟩ for i<j]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DotInteraction;

impl DotInteraction {
    /// Output dimension for `num_vectors` inputs of dimension `dim`.
    #[must_use]
    pub fn output_dim(num_vectors: usize, dim: usize) -> usize {
        num_vectors * dim + num_vectors * num_vectors.saturating_sub(1) / 2
    }

    /// Forward pass.
    ///
    /// `vectors[0]` is the bottom-MLP output; the rest are pooled embeddings. All vectors
    /// must share the same dimension.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or the dimensions disagree.
    #[must_use]
    pub fn forward(vectors: &[Vec<f64>]) -> Vec<f64> {
        assert!(!vectors.is_empty(), "interaction needs at least one vector");
        let dim = vectors[0].len();
        assert!(
            vectors.iter().all(|v| v.len() == dim),
            "all interaction inputs must share the same dimension"
        );
        let mut out = Vec::with_capacity(Self::output_dim(vectors.len(), dim));
        for v in vectors {
            out.extend_from_slice(v);
        }
        for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                let dot: f64 = vectors[i].iter().zip(&vectors[j]).map(|(a, b)| a * b).sum();
                out.push(dot);
            }
        }
        out
    }

    /// Forward pass over `num_vectors` vectors of dimension `dim` stored contiguously in
    /// `flat` (vector `i` at `flat[i*dim..(i+1)*dim]`), written into a reusable buffer.
    /// Allocation-free variant of [`Self::forward`] for the hot serving path.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != num_vectors * dim` or `num_vectors == 0`.
    pub fn forward_flat_into(flat: &[f64], num_vectors: usize, dim: usize, out: &mut Vec<f64>) {
        assert!(num_vectors > 0, "interaction needs at least one vector");
        assert_eq!(
            flat.len(),
            num_vectors * dim,
            "flat interaction input has wrong length"
        );
        out.clear();
        out.reserve(Self::output_dim(num_vectors, dim));
        out.extend_from_slice(flat);
        for i in 0..num_vectors {
            let vi = &flat[i * dim..(i + 1) * dim];
            for j in (i + 1)..num_vectors {
                let vj = &flat[j * dim..(j + 1) * dim];
                out.push(liveupdate_linalg::vector::dot(vi, vj));
            }
        }
    }

    /// Backward pass: given `dL/d(output)`, return `dL/d(vectorᵢ)` for every input vector.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length does not match [`DotInteraction::output_dim`].
    #[must_use]
    pub fn backward(vectors: &[Vec<f64>], grad_output: &[f64]) -> Vec<Vec<f64>> {
        assert!(!vectors.is_empty(), "interaction needs at least one vector");
        let dim = vectors[0].len();
        let expected = Self::output_dim(vectors.len(), dim);
        assert_eq!(
            grad_output.len(),
            expected,
            "interaction gradient dimension mismatch"
        );

        let mut grads = vec![vec![0.0; dim]; vectors.len()];
        // Pass-through part: the first `n·dim` outputs are the concatenated input vectors.
        for (v, grad) in grads.iter_mut().enumerate() {
            for k in 0..dim {
                grad[k] += grad_output[v * dim + k];
            }
        }
        // Dot-product part.
        let mut idx = vectors.len() * dim;
        for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                let g = grad_output[idx];
                idx += 1;
                if g == 0.0 {
                    continue;
                }
                for k in 0..dim {
                    grads[i][k] += g * vectors[j][k];
                    grads[j][k] += g * vectors[i][k];
                }
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn output_dim_formula() {
        assert_eq!(DotInteraction::output_dim(1, 8), 8);
        assert_eq!(DotInteraction::output_dim(3, 8), 3 * 8 + 3);
        assert_eq!(DotInteraction::output_dim(5, 16), 5 * 16 + 10);
        assert_eq!(DotInteraction::output_dim(0, 4), 0);
    }

    #[test]
    fn forward_known_values() {
        let v = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let out = DotInteraction::forward(&v);
        // [v0, v1, v2, v0·v1, v0·v2, v1·v2]
        assert_eq!(out, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn forward_dimension_mismatch_panics() {
        let _ = DotInteraction::forward(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn forward_empty_panics() {
        let _ = DotInteraction::forward(&[]);
    }

    #[test]
    fn forward_flat_into_matches_forward() {
        let vectors = vec![
            vec![0.5, -1.0, 2.0],
            vec![1.5, 0.3, -0.7],
            vec![-0.2, 0.8, 1.1],
        ];
        let flat: Vec<f64> = vectors.iter().flatten().copied().collect();
        let mut out = vec![99.0; 3]; // stale contents must be cleared
        DotInteraction::forward_flat_into(&flat, 3, 3, &mut out);
        let expected = DotInteraction::forward(&vectors);
        assert_eq!(out.len(), expected.len());
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let vectors = vec![
            vec![0.5, -1.0, 2.0],
            vec![1.5, 0.3, -0.7],
            vec![-0.2, 0.8, 1.1],
        ];
        let out = DotInteraction::forward(&vectors);
        // Loss = 0.5 * ||out||², so dL/dout = out.
        let grads = DotInteraction::backward(&vectors, &out);

        let loss = |vs: &[Vec<f64>]| -> f64 {
            DotInteraction::forward(vs)
                .iter()
                .map(|x| 0.5 * x * x)
                .sum()
        };
        let eps = 1e-6;
        for vi in 0..vectors.len() {
            for k in 0..3 {
                let mut plus = vectors.clone();
                plus[vi][k] += eps;
                let mut minus = vectors.clone();
                minus[vi][k] -= eps;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (numeric - grads[vi][k]).abs() < 1e-5,
                    "vector {vi} coord {k}: numeric {numeric} vs analytic {}",
                    grads[vi][k]
                );
            }
        }
    }

    #[test]
    fn backward_gradient_shape() {
        let vectors = vec![vec![1.0; 4]; 5];
        let grad_out = vec![1.0; DotInteraction::output_dim(5, 4)];
        let grads = DotInteraction::backward(&vectors, &grad_out);
        assert_eq!(grads.len(), 5);
        assert!(grads.iter().all(|g| g.len() == 4));
    }

    #[test]
    #[should_panic(expected = "gradient dimension mismatch")]
    fn backward_wrong_grad_length_panics() {
        let vectors = vec![vec![1.0; 2]; 2];
        let _ = DotInteraction::backward(&vectors, &[1.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_forward_output_length(n in 1usize..6, d in 1usize..8) {
            let vectors = vec![vec![0.5; d]; n];
            let out = DotInteraction::forward(&vectors);
            prop_assert_eq!(out.len(), DotInteraction::output_dim(n, d));
        }

        #[test]
        fn prop_dot_symmetry(d in 1usize..8, seed in 0u64..100) {
            // Swapping two embedding vectors must not change the set of dot products.
            let make = |offset: u64| -> Vec<f64> {
                (0..d).map(|k| ((k as u64 + offset + seed) % 7) as f64 - 3.0).collect()
            };
            let a = make(1);
            let b = make(5);
            let base = make(0);
            let out1 = DotInteraction::forward(&[base.clone(), a.clone(), b.clone()]);
            let out2 = DotInteraction::forward(&[base, b, a]);
            // Last element (a·b vs b·a) must match exactly.
            prop_assert!((out1.last().unwrap() - out2.last().unwrap()).abs() < 1e-12);
        }
    }
}
