//! Fully connected layers and multi-layer perceptrons with a hand-derived backward pass.
//!
//! DLRM uses two MLP stacks (paper Fig. 1): a *bottom* MLP that embeds the dense features
//! into the embedding space, and a *top* MLP that maps the interaction output to a click
//! logit. Both are plain dense layers with ReLU activations (identity on the output layer).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// No non-linearity (used on output layers that feed a logistic loss).
    Identity,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    fn derivative(self, pre_activation: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre_activation > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer `y = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major weights, `out_dim × in_dim`.
    weights: Vec<f64>,
    bias: Vec<f64>,
    activation: Activation,
}

/// Cached forward state of a dense layer, needed by the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCache {
    input: Vec<f64>,
    pre_activation: Vec<f64>,
}

/// Gradients for one dense layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradient {
    /// Row-major weight gradient, `out_dim × in_dim`.
    pub weights: Vec<f64>,
    /// Bias gradient, length `out_dim`.
    pub bias: Vec<f64>,
}

impl DenseLayer {
    /// Create a layer with Xavier-uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            in_dim,
            out_dim,
            weights,
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass returning the activated output and the cache for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> (Vec<f64>, LayerCache) {
        assert_eq!(
            input.len(),
            self.in_dim,
            "dense layer input dimension mismatch"
        );
        let mut pre = vec![0.0; self.out_dim];
        let rows = self.weights.chunks_exact(self.in_dim);
        for ((p, &b), row) in pre.iter_mut().zip(&self.bias).zip(rows) {
            let mut acc = b;
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *p = acc;
        }
        let out = pre.iter().map(|&x| self.activation.apply(x)).collect();
        (
            out,
            LayerCache {
                input: input.to_vec(),
                pre_activation: pre,
            },
        )
    }

    /// Inference-only forward pass into a caller-provided buffer: no `LayerCache`, no
    /// allocation. Uses the blocked GEMV kernel, so summation order (and hence the last
    /// ulp) can differ from [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim` or `out.len() != out_dim`.
    pub fn forward_into(&self, input: &[f64], out: &mut [f64]) {
        assert_eq!(
            input.len(),
            self.in_dim,
            "dense layer input dimension mismatch"
        );
        assert_eq!(
            out.len(),
            self.out_dim,
            "dense layer output dimension mismatch"
        );
        liveupdate_linalg::matrix::gemv_row_major(
            &self.weights,
            self.out_dim,
            self.in_dim,
            input,
            out,
        );
        for (o, b) in out.iter_mut().zip(&self.bias) {
            *o = self.activation.apply(*o + b);
        }
    }

    /// Backward pass: given `dL/dy`, return `(dL/dx, layer gradient)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len() != out_dim`.
    #[must_use]
    pub fn backward(&self, cache: &LayerCache, grad_output: &[f64]) -> (Vec<f64>, LayerGradient) {
        assert_eq!(
            grad_output.len(),
            self.out_dim,
            "dense layer gradient dimension mismatch"
        );
        let mut grad_pre = vec![0.0; self.out_dim];
        for o in 0..self.out_dim {
            grad_pre[o] = grad_output[o] * self.activation.derivative(cache.pre_activation[o]);
        }
        let mut grad_w = vec![0.0; self.weights.len()];
        let mut grad_input = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let gp = grad_pre[o];
            if gp == 0.0 {
                continue;
            }
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let grad_row = &mut grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grad_row[i] = gp * cache.input[i];
                grad_input[i] += gp * row[i];
            }
        }
        (
            grad_input,
            LayerGradient {
                weights: grad_w,
                bias: grad_pre,
            },
        )
    }

    /// Append the layer's parameters to `out` in the canonical flat order (all weights
    /// row-major, then all biases) — the inverse of [`Self::import_params`].
    pub fn export_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
    }

    /// Overwrite the layer's parameters from the canonical flat order produced by
    /// [`Self::export_params`], consuming exactly [`Self::parameter_count`] values.
    ///
    /// # Panics
    ///
    /// Panics if `params` holds fewer values than this layer needs.
    pub fn import_params(&mut self, params: &mut &[f64]) {
        let (w, rest) = params.split_at(self.weights.len());
        let (b, rest) = rest.split_at(self.bias.len());
        self.weights.copy_from_slice(w);
        self.bias.copy_from_slice(b);
        *params = rest;
    }

    /// Apply an SGD step with the given gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes do not match this layer.
    pub fn apply_gradient(&mut self, grad: &LayerGradient, learning_rate: f64) {
        assert_eq!(
            grad.weights.len(),
            self.weights.len(),
            "weight gradient shape mismatch"
        );
        assert_eq!(
            grad.bias.len(),
            self.bias.len(),
            "bias gradient shape mismatch"
        );
        for (w, g) in self.weights.iter_mut().zip(&grad.weights) {
            *w -= learning_rate * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&grad.bias) {
            *b -= learning_rate * g;
        }
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// Reusable ping-pong buffers for [`Mlp::infer`]. One scratch can be shared by any
/// number of MLPs and samples; buffers grow to the widest layer seen and stay there.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// Forward cache of a whole MLP (one entry per layer).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    caches: Vec<LayerCache>,
}

/// Gradients for a whole MLP (one entry per layer).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGradient {
    /// One gradient per layer, in forward order.
    pub layers: Vec<LayerGradient>,
}

impl MlpGradient {
    /// Element-wise accumulate another gradient into this one.
    ///
    /// # Panics
    ///
    /// Panics if the structures do not match.
    pub fn accumulate(&mut self, other: &MlpGradient) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "MLP gradient layer count mismatch"
        );
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            for (a, b) in mine.weights.iter_mut().zip(&theirs.weights) {
                *a += b;
            }
            for (a, b) in mine.bias.iter_mut().zip(&theirs.bias) {
                *a += b;
            }
        }
    }

    /// Scale every gradient entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for layer in &mut self.layers {
            for w in &mut layer.weights {
                *w *= alpha;
            }
            for b in &mut layer.bias {
                *b *= alpha;
            }
        }
    }
}

impl Mlp {
    /// Build an MLP with the given layer widths: `dims = [in, h1, ..., out]`. All hidden
    /// layers use ReLU; the final layer uses the identity activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are supplied or any dimension is zero.
    #[must_use]
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least an input and an output dimension"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let activation = if i + 2 == dims.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(DenseLayer::new(dims[i], dims[i + 1], activation, &mut rng));
        }
        Self { layers }
    }

    /// Input dimension of the first layer.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, DenseLayer::in_dim)
    }

    /// Output dimension of the last layer.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, DenseLayer::out_dim)
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Forward pass through all layers.
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut current = input.to_vec();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&current);
            caches.push(cache);
            current = out;
        }
        (current, MlpCache { caches })
    }

    /// Inference-only forward pass reusing caller scratch buffers: no per-layer `Vec`s,
    /// no backprop cache. Returns a slice (living in `scratch`) holding the final layer's
    /// output. Numerically equivalent to [`Self::forward`] up to summation order.
    pub fn infer<'s>(&self, input: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        let MlpScratch { a, b } = scratch;
        a.clear();
        a.extend_from_slice(input);
        let (mut src, mut dst) = (a, b);
        for layer in &self.layers {
            dst.resize(layer.out_dim(), 0.0);
            layer.forward_into(src, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Backward pass: given `dL/d(output)`, return `(dL/d(input), gradients)`.
    #[must_use]
    pub fn backward(&self, cache: &MlpCache, grad_output: &[f64]) -> (Vec<f64>, MlpGradient) {
        let mut grad = grad_output.to_vec();
        let mut layer_grads = vec![
            LayerGradient {
                weights: Vec::new(),
                bias: Vec::new()
            };
            self.layers.len()
        ];
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let (grad_in, lgrad) = layer.backward(&cache.caches[idx], &grad);
            layer_grads[idx] = lgrad;
            grad = grad_in;
        }
        (
            grad,
            MlpGradient {
                layers: layer_grads,
            },
        )
    }

    /// Zero-valued gradient with the same structure as this MLP.
    #[must_use]
    pub fn zero_gradient(&self) -> MlpGradient {
        MlpGradient {
            layers: self
                .layers
                .iter()
                .map(|l| LayerGradient {
                    weights: vec![0.0; l.weights.len()],
                    bias: vec![0.0; l.bias.len()],
                })
                .collect(),
        }
    }

    /// Append every layer's parameters to `out` in forward layer order (per layer:
    /// weights row-major, then biases) — the flat encoding full-model shipment uses.
    pub fn export_params(&self, out: &mut Vec<f64>) {
        for layer in &self.layers {
            layer.export_params(out);
        }
    }

    /// Overwrite every layer's parameters from the flat order of [`Self::export_params`],
    /// consuming exactly [`Self::parameter_count`] values from the front of `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` holds fewer values than this MLP needs.
    pub fn import_params(&mut self, params: &mut &[f64]) {
        for layer in &mut self.layers {
            layer.import_params(params);
        }
    }

    /// Apply an SGD step.
    ///
    /// # Panics
    ///
    /// Panics if the gradient structure does not match.
    pub fn apply_gradient(&mut self, grad: &MlpGradient, learning_rate: f64) {
        assert_eq!(
            grad.layers.len(),
            self.layers.len(),
            "MLP gradient layer count mismatch"
        );
        for (layer, g) in self.layers.iter_mut().zip(&grad.layers) {
            layer.apply_gradient(g, learning_rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn activation_functions() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert_eq!(Activation::Identity.apply(-3.0), -3.0);
        assert_eq!(Activation::Identity.derivative(-3.0), 1.0);
    }

    #[test]
    fn dense_layer_forward_shape() {
        let layer = DenseLayer::new(3, 2, Activation::Identity, &mut rng());
        let (out, _) = layer.forward(&[1.0, 0.0, -1.0]);
        assert_eq!(out.len(), 2);
        assert_eq!(layer.parameter_count(), 3 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn dense_layer_wrong_input_panics() {
        let layer = DenseLayer::new(3, 2, Activation::Relu, &mut rng());
        let _ = layer.forward(&[1.0]);
    }

    #[test]
    fn relu_layer_output_nonnegative() {
        let layer = DenseLayer::new(4, 6, Activation::Relu, &mut rng());
        let (out, _) = layer.forward(&[-5.0, 3.0, 0.1, -0.2]);
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    /// Numerical gradient check on a small dense layer.
    #[test]
    fn dense_layer_gradient_matches_finite_difference() {
        let mut r = rng();
        let layer = DenseLayer::new(3, 2, Activation::Relu, &mut r);
        let input = vec![0.4, -0.7, 1.2];
        // Loss = sum of outputs (so dL/dy = 1 for each output).
        let (_, cache) = layer.forward(&input);
        let (grad_input, _) = layer.backward(&cache, &[1.0, 1.0]);

        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = input.clone();
            plus[i] += eps;
            let mut minus = input.clone();
            minus[i] -= eps;
            let f_plus: f64 = layer.forward(&plus).0.iter().sum();
            let f_minus: f64 = layer.forward(&minus).0.iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad_input[i]).abs() < 1e-5,
                "input grad {i}: numeric {numeric} vs analytic {}",
                grad_input[i]
            );
        }
    }

    #[test]
    fn mlp_construction_and_shapes() {
        let mlp = Mlp::new(&[13, 64, 32, 8], 0);
        assert_eq!(mlp.in_dim(), 13);
        assert_eq!(mlp.out_dim(), 8);
        assert_eq!(mlp.num_layers(), 3);
        let (out, _) = mlp.forward(&[0.1; 13]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn mlp_needs_two_dims() {
        let _ = Mlp::new(&[4], 0);
    }

    #[test]
    fn mlp_gradient_descent_reduces_loss() {
        // Fit y = sum(x) with a tiny MLP on a fixed sample; the squared error must drop.
        let mut mlp = Mlp::new(&[2, 8, 1], 7);
        let input = [0.5, -0.25];
        let target = 1.5;
        let loss_of = |m: &Mlp| {
            let (out, _) = m.forward(&input);
            (out[0] - target).powi(2)
        };
        let initial = loss_of(&mlp);
        for _ in 0..200 {
            let (out, cache) = mlp.forward(&input);
            let dl_dout = vec![2.0 * (out[0] - target)];
            let (_, grads) = mlp.backward(&cache, &dl_dout);
            mlp.apply_gradient(&grads, 0.05);
        }
        let final_loss = loss_of(&mlp);
        assert!(
            final_loss < initial * 0.01,
            "loss {initial} -> {final_loss}"
        );
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        let mlp = Mlp::new(&[3, 5, 2], 11);
        let input = vec![0.3, -0.8, 0.5];
        let (out, cache) = mlp.forward(&input);
        // Loss = 0.5 * ||out||^2 so dL/dout = out.
        let (grad_input, _) = mlp.backward(&cache, &out);
        let eps = 1e-6;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus[i] += eps;
            let mut minus = input.clone();
            minus[i] -= eps;
            let lp: f64 = mlp.forward(&plus).0.iter().map(|x| 0.5 * x * x).sum();
            let lm: f64 = mlp.forward(&minus).0.iter().map(|x| 0.5 * x * x).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_input[i]).abs() < 1e-4,
                "grad {i}: numeric {numeric} vs analytic {}",
                grad_input[i]
            );
        }
    }

    #[test]
    fn gradient_accumulate_and_scale() {
        let mlp = Mlp::new(&[2, 3, 1], 3);
        let (out, cache) = mlp.forward(&[1.0, -1.0]);
        let (_, g1) = mlp.backward(&cache, &vec![1.0; out.len()]);
        let mut acc = mlp.zero_gradient();
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        for (a, b) in acc.layers.iter().zip(&g1.layers) {
            for (x, y) in a.weights.iter().zip(&b.weights) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mlp = Mlp::new(&[5, 17, 9, 2], 42);
        let mut scratch = MlpScratch::default();
        for trial in 0..8 {
            let x: Vec<f64> = (0..5)
                .map(|i| (i as f64 - 2.0) * 0.3 + trial as f64 * 0.1)
                .collect();
            let (expected, _) = mlp.forward(&x);
            let got = mlp.infer(&x, &mut scratch);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-12, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn parameter_count_matches_structure() {
        let mlp = Mlp::new(&[4, 8, 2], 0);
        assert_eq!(mlp.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_forward_deterministic(seed in 0u64..100, x in proptest::collection::vec(-2.0f64..2.0, 4)) {
            let mlp = Mlp::new(&[4, 6, 3], seed);
            let (a, _) = mlp.forward(&x);
            let (b, _) = mlp.forward(&x);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_identity_activation_layer_is_linear(seed in 0u64..100) {
            let mut r = StdRng::seed_from_u64(seed);
            let layer = DenseLayer::new(3, 3, Activation::Identity, &mut r);
            let x = [0.5, -1.0, 2.0];
            let y = [1.5, 0.25, -0.75];
            let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            let (fx, _) = layer.forward(&x);
            let (fy, _) = layer.forward(&y);
            let (fsum, _) = layer.forward(&sum);
            // Affine: f(x+y) = f(x) + f(y) - b, and f(0) = b.
            let (f0, _) = layer.forward(&[0.0, 0.0, 0.0]);
            for i in 0..3 {
                prop_assert!((fsum[i] - (fx[i] + fy[i] - f0[i])).abs() < 1e-9);
            }
        }
    }
}
