//! A from-scratch Deep Learning Recommendation Model (DLRM).
//!
//! This crate implements the model class the LiveUpdate paper (HPCA 2026) serves and
//! fine-tunes: the Meta-style DLRM of paper Fig. 1, combining
//!
//! * **embedding tables** ([`embedding::EmbeddingTable`]) mapping sparse categorical IDs to
//!   dense vectors, with row-wise sparse gradients and Adagrad/SGD updates,
//! * a **bottom MLP** over dense features and a **top MLP** over the interaction output
//!   ([`mlp::Mlp`]),
//! * the **dot-product interaction** layer ([`interaction`]),
//! * binary-cross-entropy **loss** ([`loss`]) and ranking **metrics** (AUC, LogLoss —
//!   [`metrics`]).
//!
//! The crate is deliberately dependency-free (no BLAS, no autograd): the backward pass is
//! hand-derived, which keeps the row-wise embedding gradients — the object LiveUpdate's
//! low-rank analysis operates on — explicit and easy to extract.
//!
//! # Example
//!
//! ```
//! use liveupdate_dlrm::model::{DlrmConfig, DlrmModel};
//! use liveupdate_dlrm::sample::Sample;
//!
//! let config = DlrmConfig::tiny(2, 100, 8);
//! let mut model = DlrmModel::new(config, 42);
//! let sample = Sample::new(vec![0.1, -0.3], vec![vec![3], vec![17]], 1.0);
//! let p = model.predict(&sample);
//! assert!((0.0..=1.0).contains(&p));
//! ```

pub mod embedding;
pub mod interaction;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optim;
pub mod sample;

pub use embedding::{EmbeddingTable, SparseGradient};
pub use metrics::{Auc, LogLoss};
pub use model::{DlrmConfig, DlrmModel};
pub use optim::OptimizerKind;
pub use sample::{MiniBatch, Sample};
