//! Embedding tables with row-wise sparse gradients.
//!
//! Embedding tables (EMTs) dominate a production DLRM's footprint and are the object the
//! whole LiveUpdate mechanism revolves around: updates touch individual rows, gradients are
//! sparse and row-wise, and the update stream's low-rank structure is what makes the LoRA
//! representation work. [`EmbeddingTable`] keeps the parameters in a flat row-major buffer;
//! [`SparseGradient`] accumulates per-row gradients for a mini-batch and is also the
//! currency handed to the rank-adaptation analysis in the core crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dense embedding table `W ∈ R^{|V|×d}` with mean pooling for multi-hot lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    num_rows: usize,
    dim: usize,
    /// Row-major weights, length `num_rows * dim`.
    weights: Vec<f64>,
    /// Per-row accumulated squared gradient norm for Adagrad (lazily grown).
    adagrad_state: Vec<f64>,
}

impl EmbeddingTable {
    /// Create a table of shape `num_rows × dim` with small random initial weights drawn
    /// uniformly from `[-1/sqrt(dim), 1/sqrt(dim)]`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(num_rows: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = 1.0 / (dim as f64).sqrt();
        let weights = (0..num_rows * dim).map(|_| rng.gen_range(-bound..bound)).collect();
        Self {
            num_rows,
            dim,
            weights,
            adagrad_state: vec![0.0; num_rows],
        }
    }

    /// Create a table with every weight set to zero (useful for delta/LoRA shadow tables).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(num_rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            num_rows,
            dim,
            weights: vec![0.0; num_rows * dim],
            adagrad_state: vec![0.0; num_rows],
        }
    }

    /// Number of rows `|V|`.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Embedding dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of parameters `|V|·d`.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.num_rows * self.dim
    }

    /// Approximate memory footprint in bytes (weights only, `f64` storage).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.parameter_count() * std::mem::size_of::<f64>()
    }

    /// Borrow row `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows`.
    #[must_use]
    pub fn row(&self, id: usize) -> &[f64] {
        assert!(id < self.num_rows, "embedding id {id} out of bounds ({})", self.num_rows);
        &self.weights[id * self.dim..(id + 1) * self.dim]
    }

    /// Borrow row `id` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows`.
    pub fn row_mut(&mut self, id: usize) -> &mut [f64] {
        assert!(id < self.num_rows, "embedding id {id} out of bounds ({})", self.num_rows);
        &mut self.weights[id * self.dim..(id + 1) * self.dim]
    }

    /// Mean-pooled lookup over a multi-hot set of IDs. Returns a zero vector when `ids` is
    /// empty (missing feature).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    #[must_use]
    pub fn pooled_lookup(&self, ids: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if ids.is_empty() {
            return out;
        }
        for &id in ids {
            let row = self.row(id);
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w;
            }
        }
        let inv = 1.0 / ids.len() as f64;
        for o in &mut out {
            *o *= inv;
        }
        out
    }

    /// Apply a sparse gradient with plain SGD: `W[i] -= lr · g[i]` for every touched row.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension does not match or an id is out of bounds.
    pub fn apply_sgd(&mut self, grad: &SparseGradient, learning_rate: f64) {
        assert_eq!(grad.dim(), self.dim, "gradient dimension mismatch");
        for (&id, g) in grad.iter() {
            let row = self.row_mut(id);
            for (w, &gv) in row.iter_mut().zip(g) {
                *w -= learning_rate * gv;
            }
        }
    }

    /// Apply a sparse gradient with row-wise Adagrad, the standard optimiser for
    /// production EMTs: the per-row accumulator uses the mean squared gradient of the row.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension does not match or an id is out of bounds.
    pub fn apply_adagrad(&mut self, grad: &SparseGradient, learning_rate: f64, eps: f64) {
        assert_eq!(grad.dim(), self.dim, "gradient dimension mismatch");
        for (&id, g) in grad.iter() {
            let sq_mean: f64 = g.iter().map(|x| x * x).sum::<f64>() / self.dim as f64;
            self.adagrad_state[id] += sq_mean;
            let scale = learning_rate / (self.adagrad_state[id].sqrt() + eps);
            let row = self.row_mut(id);
            for (w, &gv) in row.iter_mut().zip(g) {
                *w -= scale * gv;
            }
        }
    }

    /// Add `delta` to row `id` (used when merging LoRA or delta updates into the base).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != dim` or `id` is out of bounds.
    pub fn add_to_row(&mut self, id: usize, delta: &[f64]) {
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        let row = self.row_mut(id);
        for (w, &d) in row.iter_mut().zip(delta) {
            *w += d;
        }
    }

    /// Overwrite row `id` with `values` (used by full-parameter synchronisation).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim` or `id` is out of bounds.
    pub fn set_row(&mut self, id: usize, values: &[f64]) {
        assert_eq!(values.len(), self.dim, "row dimension mismatch");
        self.row_mut(id).copy_from_slice(values);
    }

    /// Copy every row of `other` into `self` (full sync). Both tables must have identical
    /// shapes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &EmbeddingTable) {
        assert_eq!(self.num_rows, other.num_rows, "row count mismatch in copy_from");
        assert_eq!(self.dim, other.dim, "dim mismatch in copy_from");
        self.weights.copy_from_slice(&other.weights);
    }

    /// Number of rows whose weights differ from `other` by more than `tolerance` in any
    /// coordinate — the quantity behind the paper's Fig. 3a update-ratio measurement.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn changed_rows(&self, other: &EmbeddingTable, tolerance: f64) -> Vec<usize> {
        assert_eq!(self.num_rows, other.num_rows, "row count mismatch in changed_rows");
        assert_eq!(self.dim, other.dim, "dim mismatch in changed_rows");
        (0..self.num_rows)
            .filter(|&i| {
                self.row(i)
                    .iter()
                    .zip(other.row(i))
                    .any(|(a, b)| (a - b).abs() > tolerance)
            })
            .collect()
    }

    /// Squared L2 distance between this table and `other`, summed over all rows.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn squared_distance(&self, other: &EmbeddingTable) -> f64 {
        assert_eq!(self.weights.len(), other.weights.len(), "shape mismatch in squared_distance");
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// View the raw row-major weights.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }
}

/// Row-wise sparse gradient for one embedding table: `id → ∂L/∂W[id]`.
///
/// Rows are kept in a `BTreeMap` so iteration order is deterministic, which keeps training
/// runs reproducible and makes the gradient snapshots handed to PCA stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseGradient {
    dim: usize,
    rows: BTreeMap<usize, Vec<f64>>,
}

impl SparseGradient {
    /// Create an empty gradient for vectors of dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            rows: BTreeMap::new(),
        }
    }

    /// Gradient vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Accumulate `grad` into row `id` (adds if the row already has a gradient).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn accumulate(&mut self, id: usize, grad: &[f64]) {
        assert_eq!(grad.len(), self.dim, "gradient dimension mismatch");
        let entry = self.rows.entry(id).or_insert_with(|| vec![0.0; self.dim]);
        for (e, &g) in entry.iter_mut().zip(grad) {
            *e += g;
        }
    }

    /// Merge another sparse gradient into this one.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &SparseGradient) {
        assert_eq!(self.dim, other.dim, "gradient dimension mismatch in merge");
        for (&id, g) in other.iter() {
            self.accumulate(id, g);
        }
    }

    /// Scale every stored gradient by `alpha` (e.g. `1/batch_size`).
    pub fn scale(&mut self, alpha: f64) {
        for g in self.rows.values_mut() {
            for v in g.iter_mut() {
                *v *= alpha;
            }
        }
    }

    /// Gradient for a specific row, if present.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&[f64]> {
        self.rows.get(&id).map(Vec::as_slice)
    }

    /// Iterate over `(id, gradient)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (&usize, &Vec<f64>)> {
        self.rows.iter()
    }

    /// The set of touched row ids in ascending order.
    #[must_use]
    pub fn touched_ids(&self) -> Vec<usize> {
        self.rows.keys().copied().collect()
    }

    /// L2 norm of the gradient of row `id`, or `0.0` if untouched.
    #[must_use]
    pub fn row_norm(&self, id: usize) -> f64 {
        self.get(id)
            .map(|g| g.iter().map(|x| x * x).sum::<f64>().sqrt())
            .unwrap_or(0.0)
    }

    /// Convert into a dense matrix whose rows are the touched gradients (in id order),
    /// which is exactly the snapshot matrix `G` the paper's PCA analysis consumes.
    /// Returns the matrix together with the id of each row.
    #[must_use]
    pub fn to_snapshot(&self) -> (liveupdate_linalg::Matrix, Vec<usize>) {
        let ids = self.touched_ids();
        let rows: Vec<Vec<f64>> = ids.iter().map(|id| self.rows[id].clone()).collect();
        let matrix = liveupdate_linalg::Matrix::from_rows(&rows)
            .expect("all gradient rows share the same dimension");
        (matrix, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_table_has_bounded_init() {
        let t = EmbeddingTable::new(10, 4, 1);
        let bound = 1.0 / 2.0;
        assert!(t.as_slice().iter().all(|w| w.abs() <= bound));
        assert_eq!(t.parameter_count(), 40);
        assert_eq!(t.memory_bytes(), 40 * 8);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = EmbeddingTable::new(4, 0, 0);
    }

    #[test]
    fn pooled_lookup_means_rows() {
        let mut t = EmbeddingTable::zeros(3, 2);
        t.set_row(0, &[1.0, 2.0]);
        t.set_row(1, &[3.0, 4.0]);
        assert_eq!(t.pooled_lookup(&[0, 1]), vec![2.0, 3.0]);
        assert_eq!(t.pooled_lookup(&[0]), vec![1.0, 2.0]);
        assert_eq!(t.pooled_lookup(&[]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn lookup_out_of_bounds_panics() {
        let t = EmbeddingTable::zeros(2, 2);
        let _ = t.row(2);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut t = EmbeddingTable::zeros(4, 2);
        let mut g = SparseGradient::new(2);
        g.accumulate(1, &[1.0, -2.0]);
        t.apply_sgd(&g, 0.5);
        assert_eq!(t.row(1), &[-0.5, 1.0]);
        assert_eq!(t.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn adagrad_shrinks_effective_step_over_time() {
        let mut t = EmbeddingTable::zeros(2, 2);
        let mut g = SparseGradient::new(2);
        g.accumulate(0, &[1.0, 1.0]);
        t.apply_adagrad(&g, 0.1, 1e-8);
        let first_step = -t.row(0)[0];
        let before_second = t.row(0)[0];
        t.apply_adagrad(&g, 0.1, 1e-8);
        let second_step = before_second - t.row(0)[0];
        assert!(first_step > 0.0);
        assert!(second_step > 0.0);
        assert!(second_step < first_step, "adagrad step should shrink");
    }

    #[test]
    fn add_and_set_row() {
        let mut t = EmbeddingTable::zeros(2, 3);
        t.set_row(0, &[1.0, 2.0, 3.0]);
        t.add_to_row(0, &[0.5, 0.5, 0.5]);
        assert_eq!(t.row(0), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn changed_rows_and_distance() {
        let mut a = EmbeddingTable::zeros(5, 2);
        let b = EmbeddingTable::zeros(5, 2);
        assert!(a.changed_rows(&b, 1e-12).is_empty());
        assert_eq!(a.squared_distance(&b), 0.0);
        a.set_row(2, &[1.0, 0.0]);
        a.set_row(4, &[0.0, 2.0]);
        assert_eq!(a.changed_rows(&b, 1e-12), vec![2, 4]);
        assert!((a.squared_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn copy_from_synchronises() {
        let src = EmbeddingTable::new(6, 3, 9);
        let mut dst = EmbeddingTable::zeros(6, 3);
        dst.copy_from(&src);
        assert!(dst.changed_rows(&src, 0.0).is_empty());
    }

    #[test]
    fn sparse_gradient_accumulate_and_merge() {
        let mut g = SparseGradient::new(2);
        assert!(g.is_empty());
        g.accumulate(3, &[1.0, 1.0]);
        g.accumulate(3, &[1.0, -1.0]);
        g.accumulate(7, &[2.0, 0.0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(3).unwrap(), &[2.0, 0.0]);
        assert_eq!(g.touched_ids(), vec![3, 7]);
        assert!((g.row_norm(7) - 2.0).abs() < 1e-12);
        assert_eq!(g.row_norm(100), 0.0);

        let mut h = SparseGradient::new(2);
        h.accumulate(7, &[0.0, 1.0]);
        g.merge(&h);
        assert_eq!(g.get(7).unwrap(), &[2.0, 1.0]);

        g.scale(0.5);
        assert_eq!(g.get(3).unwrap(), &[1.0, 0.0]);
    }

    #[test]
    fn snapshot_matrix_matches_touched_rows() {
        let mut g = SparseGradient::new(3);
        g.accumulate(5, &[1.0, 2.0, 3.0]);
        g.accumulate(1, &[-1.0, 0.0, 1.0]);
        let (m, ids) = g.to_snapshot();
        assert_eq!(ids, vec![1, 5]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), &[-1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_sgd_then_reverse_restores(
            ids in proptest::collection::vec(0usize..20, 1..10),
            lr in 0.001f64..1.0,
        ) {
            let mut t = EmbeddingTable::new(20, 4, 3);
            let original = t.clone();
            let mut g = SparseGradient::new(4);
            for (k, &id) in ids.iter().enumerate() {
                g.accumulate(id, &[k as f64, 1.0, -1.0, 0.5]);
            }
            t.apply_sgd(&g, lr);
            t.apply_sgd(&g, -lr);
            prop_assert!(t.squared_distance(&original) < 1e-18);
        }

        #[test]
        fn prop_changed_rows_subset_of_touched(
            ids in proptest::collection::vec(0usize..50, 1..20),
        ) {
            let mut t = EmbeddingTable::new(50, 2, 5);
            let before = t.clone();
            let mut g = SparseGradient::new(2);
            for &id in &ids {
                g.accumulate(id, &[1.0, 1.0]);
            }
            t.apply_sgd(&g, 0.1);
            let changed = t.changed_rows(&before, 0.0);
            let touched = g.touched_ids();
            for c in &changed {
                prop_assert!(touched.contains(c));
            }
        }

        #[test]
        fn prop_pooled_lookup_within_row_bounds(
            ids in proptest::collection::vec(0usize..30, 1..8),
        ) {
            let t = EmbeddingTable::new(30, 4, 7);
            let pooled = t.pooled_lookup(&ids);
            // The mean of rows must lie within [min, max] of the contributing coordinates.
            for j in 0..4 {
                let vals: Vec<f64> = ids.iter().map(|&id| t.row(id)[j]).collect();
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(pooled[j] >= lo - 1e-12 && pooled[j] <= hi + 1e-12);
            }
        }
    }
}
