//! Embedding tables with row-wise sparse gradients and quantized row storage.
//!
//! Embedding tables (EMTs) dominate a production DLRM's footprint and are the object the
//! whole LiveUpdate mechanism revolves around: updates touch individual rows, gradients are
//! sparse and row-wise, and the update stream's low-rank structure is what makes the LoRA
//! representation work. [`EmbeddingTable`] keeps the parameters behind a [`StorageKind`]:
//! full-precision `f64` (the trainer's format), `f16`, or `int8` with a per-row scale —
//! the last two are what lets a 10⁶–10⁷-row serving table fit in a memory budget the
//! full-precision table would blow through. Quantized tables dequantize on read and keep
//! `f64` master rows only for the rows a writer has actually touched, so the updater's
//! working set stays exact while the cold tail stays compressed.
//! [`SparseGradient`] accumulates per-row gradients for a mini-batch and is also the
//! currency handed to the rank-adaptation analysis in the core crate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How an [`EmbeddingTable`] stores its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Full-precision `f64` rows (8 bytes/parameter) — the trainer's format.
    F64,
    /// IEEE binary16 rows (2 bytes/parameter), dequantized on read.
    F16,
    /// `int8` codes with one `f64` scale per row (≈1 byte/parameter), dequantized on read.
    I8,
}

impl StorageKind {
    /// Human-readable name used by scenario files and bench output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            StorageKind::F64 => "f64",
            StorageKind::F16 => "f16",
            StorageKind::I8 => "i8",
        }
    }

    /// Parse the scenario-file spelling produced by [`StorageKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<StorageKind> {
        match name {
            "f64" => Some(StorageKind::F64),
            "f16" => Some(StorageKind::F16),
            "i8" | "int8" => Some(StorageKind::I8),
            _ => None,
        }
    }
}

/// The physical row buffer behind one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RowStorage {
    /// Row-major `f64` weights, length `num_rows * dim`.
    F64(Vec<f64>),
    /// Row-major binary16 codes, length `num_rows * dim`.
    F16(Vec<u16>),
    /// Row-major `int8` codes plus one dequantization scale per row.
    I8 { codes: Vec<i8>, scales: Vec<f64> },
}

/// Mix function of splitmix64 — the per-row seed stream generator. Each row of a table
/// draws from an independent stream keyed by `(table seed, row id)`, so constructing row
/// `r` never has to advance an RNG through rows `0..r` (the property that makes 10⁷-row
/// construction feasible and row values independent of the table's total size).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fill `out` with row `row`'s initial weights, uniform in `[-bound, bound)`, from the
/// row's own seed stream.
fn fill_row_init(seed: u64, row: usize, bound: f64, out: &mut [f64]) {
    let mut state = seed ^ (row as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for v in out.iter_mut() {
        let bits = splitmix64(&mut state);
        // 53 uniform mantissa bits → [0, 1).
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        *v = (2.0 * unit - 1.0) * bound;
    }
}

/// Encode an `f64` as IEEE binary16 (round-to-nearest), via `f32`.
fn f16_encode(v: f64) -> u16 {
    let bits = (v as f32).to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 255 {
        // Inf / NaN.
        return sign | 0x7C00 | u16::from(mant != 0) << 9;
    }
    let half_exp = exp - 127 + 15;
    if half_exp >= 31 {
        return sign | 0x7C00; // overflow → ±inf
    }
    if half_exp <= 0 {
        if half_exp < -10 {
            return sign; // underflow → ±0
        }
        let m = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32;
        let half = (m >> shift) as u16;
        let round = ((m >> (shift - 1)) & 1) as u16;
        return sign | (half + round);
    }
    let half = ((half_exp as u32) << 10) | (mant >> 13);
    let round = (mant >> 12) & 1;
    sign.wrapping_add((half + round) as u16)
}

/// Decode an IEEE binary16 code to `f64`.
fn f16_decode(h: u16) -> f64 {
    let sign = if h & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = (h >> 10) & 0x1F;
    let mant = f64::from(h & 0x03FF);
    let magnitude = match exp {
        0 => mant * 2f64.powi(-24),
        31 => {
            if mant == 0.0 {
                f64::INFINITY
            } else {
                return f64::NAN;
            }
        }
        e => (1.0 + mant / 1024.0) * 2f64.powi(i32::from(e) - 15),
    };
    sign * magnitude
}

/// Per-row int8 scale: codes span `[-127, 127]` over the row's max magnitude.
fn i8_row_scale(row: &[f64]) -> f64 {
    let max_abs = row.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        0.0
    }
}

/// Encode one value against a row scale.
fn i8_encode(v: f64, scale: f64) -> i8 {
    if scale == 0.0 {
        0
    } else {
        (v / scale).round().clamp(-127.0, 127.0) as i8
    }
}

/// A dense embedding table `W ∈ R^{|V|×d}` with mean pooling for multi-hot lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    num_rows: usize,
    dim: usize,
    storage: RowStorage,
    /// Exact `f64` rows for writer-touched indices of a quantized table (unused — always
    /// empty — under `f64` storage, where writes go straight to the backing buffer).
    master: BTreeMap<usize, Vec<f64>>,
    /// Per-row accumulated squared gradient norm for Adagrad, lazily grown on first touch.
    adagrad_state: BTreeMap<usize, f64>,
}

/// Panic unless `num_rows × dim` fits in `usize` (and in practice in an allocatable
/// buffer). Centralised so every constructor and sizing path agrees.
fn checked_len(num_rows: usize, dim: usize) -> usize {
    num_rows
        .checked_mul(dim)
        .unwrap_or_else(|| panic!("embedding geometry {num_rows}×{dim} overflows usize"))
}

impl EmbeddingTable {
    /// Create a table of shape `num_rows × dim` with small random initial weights drawn
    /// uniformly from `[-1/sqrt(dim), 1/sqrt(dim)]`. Each row draws from its own seed
    /// stream, so construction is `O(num_rows · dim)` with a tiny constant and row `r`'s
    /// values do not depend on `num_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_rows * dim` overflows `usize`.
    #[must_use]
    pub fn new(num_rows: usize, dim: usize, seed: u64) -> Self {
        Self::with_storage(num_rows, dim, seed, StorageKind::F64)
    }

    /// [`Self::new`] with an explicit [`StorageKind`]. Quantized kinds are encoded row by
    /// row during construction, so a 10⁷-row `int8` table never materialises the full
    /// `f64` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_rows * dim` overflows `usize`.
    #[must_use]
    pub fn with_storage(num_rows: usize, dim: usize, seed: u64, kind: StorageKind) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        let len = checked_len(num_rows, dim);
        let bound = 1.0 / (dim as f64).sqrt();
        let mut row_buf = vec![0.0; dim];
        let storage = match kind {
            StorageKind::F64 => {
                let mut weights = vec![0.0; len];
                for (row, chunk) in weights.chunks_mut(dim).enumerate() {
                    fill_row_init(seed, row, bound, chunk);
                }
                RowStorage::F64(weights)
            }
            StorageKind::F16 => {
                let mut codes = vec![0u16; len];
                for (row, chunk) in codes.chunks_mut(dim).enumerate() {
                    fill_row_init(seed, row, bound, &mut row_buf);
                    for (c, &v) in chunk.iter_mut().zip(&row_buf) {
                        *c = f16_encode(v);
                    }
                }
                RowStorage::F16(codes)
            }
            StorageKind::I8 => {
                let mut codes = vec![0i8; len];
                let mut scales = vec![0.0; num_rows];
                for row in 0..num_rows {
                    fill_row_init(seed, row, bound, &mut row_buf);
                    let scale = i8_row_scale(&row_buf);
                    scales[row] = scale;
                    for (c, &v) in codes[row * dim..(row + 1) * dim].iter_mut().zip(&row_buf) {
                        *c = i8_encode(v, scale);
                    }
                }
                RowStorage::I8 { codes, scales }
            }
        };
        Self {
            num_rows,
            dim,
            storage,
            master: BTreeMap::new(),
            adagrad_state: BTreeMap::new(),
        }
    }

    /// Create a table with every weight set to zero (useful for delta/LoRA shadow tables).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_rows * dim` overflows `usize`.
    #[must_use]
    pub fn zeros(num_rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        let len = checked_len(num_rows, dim);
        Self {
            num_rows,
            dim,
            storage: RowStorage::F64(vec![0.0; len]),
            master: BTreeMap::new(),
            adagrad_state: BTreeMap::new(),
        }
    }

    /// Re-encode this table under `kind`, dropping the master overlay (its exact rows are
    /// folded into the new backing buffer, quantized if the new kind is lossy). Converting
    /// a trained `f64` table to `i8`/`f16` is how a serving replica adopts a compressed
    /// footprint.
    pub fn convert_storage(&mut self, kind: StorageKind) {
        if self.storage_kind() == kind && self.master.is_empty() {
            return;
        }
        let len = checked_len(self.num_rows, self.dim);
        let mut row_buf = vec![0.0; self.dim];
        let storage = match kind {
            StorageKind::F64 => {
                let mut weights = vec![0.0; len];
                for row in 0..self.num_rows {
                    self.row_into(row, &mut row_buf);
                    weights[row * self.dim..(row + 1) * self.dim].copy_from_slice(&row_buf);
                }
                RowStorage::F64(weights)
            }
            StorageKind::F16 => {
                let mut codes = vec![0u16; len];
                for row in 0..self.num_rows {
                    self.row_into(row, &mut row_buf);
                    for (c, &v) in codes[row * self.dim..(row + 1) * self.dim]
                        .iter_mut()
                        .zip(&row_buf)
                    {
                        *c = f16_encode(v);
                    }
                }
                RowStorage::F16(codes)
            }
            StorageKind::I8 => {
                let mut codes = vec![0i8; len];
                let mut scales = vec![0.0; self.num_rows];
                for row in 0..self.num_rows {
                    self.row_into(row, &mut row_buf);
                    let scale = i8_row_scale(&row_buf);
                    scales[row] = scale;
                    for (c, &v) in codes[row * self.dim..(row + 1) * self.dim]
                        .iter_mut()
                        .zip(&row_buf)
                    {
                        *c = i8_encode(v, scale);
                    }
                }
                RowStorage::I8 { codes, scales }
            }
        };
        self.storage = storage;
        self.master.clear();
    }

    /// Which storage backend this table currently uses.
    #[must_use]
    pub fn storage_kind(&self) -> StorageKind {
        match &self.storage {
            RowStorage::F64(_) => StorageKind::F64,
            RowStorage::F16(_) => StorageKind::F16,
            RowStorage::I8 { .. } => StorageKind::I8,
        }
    }

    /// Number of exact `f64` master rows currently overlaying the quantized storage.
    #[must_use]
    pub fn master_rows(&self) -> usize {
        self.master.len()
    }

    /// Number of rows with a materialised Adagrad accumulator (grows on first touch).
    #[must_use]
    pub fn adagrad_entries(&self) -> usize {
        self.adagrad_state.len()
    }

    /// Number of rows `|V|`.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Embedding dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of parameters `|V|·d`.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.num_rows * self.dim
    }

    /// Resident memory footprint of the weights in bytes: the backing buffer at its
    /// actual precision plus any `f64` master rows. For `f64` storage this is the
    /// classic `|V|·d·8`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let backing = match &self.storage {
            RowStorage::F64(w) => w.len() * std::mem::size_of::<f64>(),
            RowStorage::F16(c) => c.len() * std::mem::size_of::<u16>(),
            RowStorage::I8 { codes, scales } => {
                codes.len() + scales.len() * std::mem::size_of::<f64>()
            }
        };
        backing + self.master.len() * self.dim * std::mem::size_of::<f64>()
    }

    /// Borrow row `id`. Only rows with an exact `f64` representation can be borrowed:
    /// every row of an `f64`-storage table, or a master row of a quantized table.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows`, or if the row lives only in quantized storage (use
    /// [`Self::row_into`] / [`Self::row_to_vec`] there).
    #[must_use]
    pub fn row(&self, id: usize) -> &[f64] {
        assert!(
            id < self.num_rows,
            "embedding id {id} out of bounds ({})",
            self.num_rows
        );
        if let RowStorage::F64(w) = &self.storage {
            return &w[id * self.dim..(id + 1) * self.dim];
        }
        self.master
            .get(&id)
            .map(Vec::as_slice)
            .expect("quantized row has no f64 view; use row_into/row_to_vec")
    }

    /// Dequantize row `id` into `out` (the general read path, valid for every storage
    /// kind). Master rows return their exact `f64` values.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows` or `out.len() != dim`.
    pub fn row_into(&self, id: usize, out: &mut [f64]) {
        assert!(
            id < self.num_rows,
            "embedding id {id} out of bounds ({})",
            self.num_rows
        );
        assert_eq!(out.len(), self.dim, "output buffer dimension mismatch");
        if !matches!(self.storage, RowStorage::F64(_)) {
            if let Some(exact) = self.master.get(&id) {
                out.copy_from_slice(exact);
                return;
            }
        }
        match &self.storage {
            RowStorage::F64(w) => out.copy_from_slice(&w[id * self.dim..(id + 1) * self.dim]),
            RowStorage::F16(c) => {
                for (o, &code) in out.iter_mut().zip(&c[id * self.dim..(id + 1) * self.dim]) {
                    *o = f16_decode(code);
                }
            }
            RowStorage::I8 { codes, scales } => {
                let scale = scales[id];
                for (o, &code) in out
                    .iter_mut()
                    .zip(&codes[id * self.dim..(id + 1) * self.dim])
                {
                    *o = f64::from(code) * scale;
                }
            }
        }
    }

    /// Accumulate the dequantized row `id` into `acc` (`acc[k] += row[k]`), fused with
    /// the decode exactly like [`Self::pooled_lookup_into`]'s inner loop — per-id callers
    /// (such as the serving snapshot's partial-hit hot-row gather) get bit-identical sums
    /// to the whole-lookup path.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows` or `acc.len() != dim`.
    pub fn add_row_into(&self, id: usize, acc: &mut [f64]) {
        assert!(
            id < self.num_rows,
            "embedding id {id} out of bounds ({})",
            self.num_rows
        );
        assert_eq!(acc.len(), self.dim, "accumulator dimension mismatch");
        if !matches!(self.storage, RowStorage::F64(_)) {
            if let Some(exact) = self.master.get(&id) {
                for (o, &v) in acc.iter_mut().zip(exact) {
                    *o += v;
                }
                return;
            }
        }
        match &self.storage {
            RowStorage::F64(w) => {
                for (o, &v) in acc.iter_mut().zip(&w[id * self.dim..(id + 1) * self.dim]) {
                    *o += v;
                }
            }
            RowStorage::F16(c) => {
                for (o, &code) in acc.iter_mut().zip(&c[id * self.dim..(id + 1) * self.dim]) {
                    *o += f16_decode(code);
                }
            }
            RowStorage::I8 { codes, scales } => {
                let scale = scales[id];
                for (o, &code) in acc
                    .iter_mut()
                    .zip(&codes[id * self.dim..(id + 1) * self.dim])
                {
                    *o += f64::from(code) * scale;
                }
            }
        }
    }

    /// Dequantize row `id` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows`.
    #[must_use]
    pub fn row_to_vec(&self, id: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.row_into(id, &mut out);
        out
    }

    /// Visit every row in id order as a dequantized `f64` slice (master rows exact).
    pub fn for_each_row(&self, mut f: impl FnMut(usize, &[f64])) {
        if let RowStorage::F64(w) = &self.storage {
            for (id, chunk) in w.chunks(self.dim).enumerate() {
                f(id, chunk);
            }
            return;
        }
        let mut buf = vec![0.0; self.dim];
        for id in 0..self.num_rows {
            self.row_into(id, &mut buf);
            f(id, &buf);
        }
    }

    /// Borrow row `id` mutably. On a quantized table this materialises the row into the
    /// `f64` master overlay (grow-on-first-touch), which is exactly the "master rows only
    /// for the updater's touched set" contract.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_rows`.
    pub fn row_mut(&mut self, id: usize) -> &mut [f64] {
        assert!(
            id < self.num_rows,
            "embedding id {id} out of bounds ({})",
            self.num_rows
        );
        if !matches!(self.storage, RowStorage::F64(_)) && !self.master.contains_key(&id) {
            let decoded = self.row_to_vec(id);
            self.master.insert(id, decoded);
        }
        match &mut self.storage {
            RowStorage::F64(w) => &mut w[id * self.dim..(id + 1) * self.dim],
            _ => self
                .master
                .get_mut(&id)
                .expect("row promoted to master above")
                .as_mut_slice(),
        }
    }

    /// Mean-pooled lookup over a multi-hot set of IDs, written into `out` without
    /// allocating. Dequantization happens inline during accumulation, so a quantized
    /// lookup streams 1–2 bytes per parameter instead of 8. Writes zeros when `ids` is
    /// empty (missing feature).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds or `out.len() != dim`.
    pub fn pooled_lookup_into(&self, ids: &[usize], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "output buffer dimension mismatch");
        out.fill(0.0);
        if ids.is_empty() {
            return;
        }
        match &self.storage {
            RowStorage::F64(w) => {
                for &id in ids {
                    assert!(
                        id < self.num_rows,
                        "embedding id {id} out of bounds ({})",
                        self.num_rows
                    );
                    let row = &w[id * self.dim..(id + 1) * self.dim];
                    for (o, &v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
            }
            RowStorage::F16(c) => {
                for &id in ids {
                    assert!(
                        id < self.num_rows,
                        "embedding id {id} out of bounds ({})",
                        self.num_rows
                    );
                    if let Some(exact) = self.master.get(&id) {
                        for (o, &v) in out.iter_mut().zip(exact) {
                            *o += v;
                        }
                    } else {
                        let row = &c[id * self.dim..(id + 1) * self.dim];
                        for (o, &code) in out.iter_mut().zip(row) {
                            *o += f16_decode(code);
                        }
                    }
                }
            }
            RowStorage::I8 { codes, scales } => {
                for &id in ids {
                    assert!(
                        id < self.num_rows,
                        "embedding id {id} out of bounds ({})",
                        self.num_rows
                    );
                    if let Some(exact) = self.master.get(&id) {
                        for (o, &v) in out.iter_mut().zip(exact) {
                            *o += v;
                        }
                    } else {
                        let scale = scales[id];
                        let row = &codes[id * self.dim..(id + 1) * self.dim];
                        for (o, &code) in out.iter_mut().zip(row) {
                            *o += f64::from(code) * scale;
                        }
                    }
                }
            }
        }
        let inv = 1.0 / ids.len() as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }

    /// Mean-pooled lookup over a multi-hot set of IDs. Returns a zero vector when `ids`
    /// is empty (missing feature). Allocates; hot paths use
    /// [`Self::pooled_lookup_into`].
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds.
    #[must_use]
    pub fn pooled_lookup(&self, ids: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.pooled_lookup_into(ids, &mut out);
        out
    }

    /// Apply a sparse gradient with plain SGD: `W[i] -= lr · g[i]` for every touched row.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension does not match or an id is out of bounds.
    pub fn apply_sgd(&mut self, grad: &SparseGradient, learning_rate: f64) {
        assert_eq!(grad.dim(), self.dim, "gradient dimension mismatch");
        for (&id, g) in grad.iter() {
            let row = self.row_mut(id);
            for (w, &gv) in row.iter_mut().zip(g) {
                *w -= learning_rate * gv;
            }
        }
    }

    /// Apply a sparse gradient with row-wise Adagrad, the standard optimiser for
    /// production EMTs: the per-row accumulator uses the mean squared gradient of the
    /// row. Accumulator entries are created on a row's first touch, never eagerly.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension does not match or an id is out of bounds.
    pub fn apply_adagrad(&mut self, grad: &SparseGradient, learning_rate: f64, eps: f64) {
        assert_eq!(grad.dim(), self.dim, "gradient dimension mismatch");
        for (&id, g) in grad.iter() {
            assert!(
                id < self.num_rows,
                "embedding id {id} out of bounds ({})",
                self.num_rows
            );
            let sq_mean: f64 = g.iter().map(|x| x * x).sum::<f64>() / self.dim as f64;
            let state = self.adagrad_state.entry(id).or_insert(0.0);
            *state += sq_mean;
            let scale = learning_rate / (state.sqrt() + eps);
            let row = self.row_mut(id);
            for (w, &gv) in row.iter_mut().zip(g) {
                *w -= scale * gv;
            }
        }
    }

    /// Add `delta` to row `id` (used when merging LoRA or delta updates into the base).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != dim` or `id` is out of bounds.
    pub fn add_to_row(&mut self, id: usize, delta: &[f64]) {
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        let row = self.row_mut(id);
        for (w, &d) in row.iter_mut().zip(delta) {
            *w += d;
        }
    }

    /// Overwrite row `id` with `values` (used by full-parameter synchronisation). On a
    /// quantized table the exact values land in the master overlay.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim` or `id` is out of bounds.
    pub fn set_row(&mut self, id: usize, values: &[f64]) {
        assert_eq!(values.len(), self.dim, "row dimension mismatch");
        assert!(
            id < self.num_rows,
            "embedding id {id} out of bounds ({})",
            self.num_rows
        );
        match &mut self.storage {
            RowStorage::F64(w) => w[id * self.dim..(id + 1) * self.dim].copy_from_slice(values),
            _ => {
                self.master.insert(id, values.to_vec());
            }
        }
    }

    /// Copy every row of `other` into `self` (full sync), preserving `self`'s storage
    /// kind: a quantized replica re-encodes the shipment instead of silently inflating
    /// back to `f64`. Both tables must have identical shapes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &EmbeddingTable) {
        assert_eq!(
            self.num_rows, other.num_rows,
            "row count mismatch in copy_from"
        );
        assert_eq!(self.dim, other.dim, "dim mismatch in copy_from");
        self.master.clear();
        if let (RowStorage::F64(dst), RowStorage::F64(src)) = (&mut self.storage, &other.storage) {
            if other.master.is_empty() {
                dst.copy_from_slice(src);
                return;
            }
        }
        let dim = self.dim;
        let mut buf = vec![0.0; dim];
        for id in 0..self.num_rows {
            other.row_into(id, &mut buf);
            match &mut self.storage {
                RowStorage::F64(w) => w[id * dim..(id + 1) * dim].copy_from_slice(&buf),
                RowStorage::F16(c) => {
                    for (code, &v) in c[id * dim..(id + 1) * dim].iter_mut().zip(&buf) {
                        *code = f16_encode(v);
                    }
                }
                RowStorage::I8 { codes, scales } => {
                    let scale = i8_row_scale(&buf);
                    scales[id] = scale;
                    for (code, &v) in codes[id * dim..(id + 1) * dim].iter_mut().zip(&buf) {
                        *code = i8_encode(v, scale);
                    }
                }
            }
        }
    }

    /// Number of rows whose weights differ from `other` by more than `tolerance` in any
    /// coordinate — the quantity behind the paper's Fig. 3a update-ratio measurement.
    /// Rows are compared at their dequantized values.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn changed_rows(&self, other: &EmbeddingTable, tolerance: f64) -> Vec<usize> {
        assert_eq!(
            self.num_rows, other.num_rows,
            "row count mismatch in changed_rows"
        );
        assert_eq!(self.dim, other.dim, "dim mismatch in changed_rows");
        let mut a = vec![0.0; self.dim];
        let mut b = vec![0.0; self.dim];
        (0..self.num_rows)
            .filter(|&i| {
                self.row_into(i, &mut a);
                other.row_into(i, &mut b);
                a.iter().zip(&b).any(|(x, y)| (x - y).abs() > tolerance)
            })
            .collect()
    }

    /// Squared L2 distance between this table and `other`, summed over all rows (at
    /// dequantized values).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn squared_distance(&self, other: &EmbeddingTable) -> f64 {
        assert_eq!(
            self.num_rows, other.num_rows,
            "shape mismatch in squared_distance"
        );
        assert_eq!(self.dim, other.dim, "shape mismatch in squared_distance");
        let mut a = vec![0.0; self.dim];
        let mut b = vec![0.0; self.dim];
        let mut total = 0.0;
        for i in 0..self.num_rows {
            self.row_into(i, &mut a);
            other.row_into(i, &mut b);
            total += a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>();
        }
        total
    }

    /// View the raw row-major weights.
    ///
    /// # Panics
    ///
    /// Panics unless the table uses `f64` storage — quantized tables have no flat `f64`
    /// buffer to borrow; iterate with [`Self::for_each_row`] instead.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        match &self.storage {
            RowStorage::F64(w) => w,
            _ => panic!("as_slice requires f64 row storage; use for_each_row on quantized tables"),
        }
    }

    /// Append every row (dequantized, in id order) to `out` — the export half of a
    /// full-parameter shipment.
    pub fn export_rows_into(&self, out: &mut Vec<f64>) {
        self.for_each_row(|_, row| out.extend_from_slice(row));
    }

    /// Consume the head of `rest` as this table's rows (the import half of a
    /// full-parameter shipment, inverse of [`Self::export_rows_into`] for `f64`
    /// storage; quantized kinds re-encode and therefore round).
    ///
    /// # Panics
    ///
    /// Panics if `rest` holds fewer than `num_rows * dim` values.
    pub fn import_rows(&mut self, rest: &mut &[f64]) {
        let needed = self.parameter_count();
        assert!(
            rest.len() >= needed,
            "parameter stream too short for table import"
        );
        let (head, tail) = rest.split_at(needed);
        self.master.clear();
        let dim = self.dim;
        match &mut self.storage {
            RowStorage::F64(w) => w.copy_from_slice(head),
            RowStorage::F16(c) => {
                for (code, &v) in c.iter_mut().zip(head) {
                    *code = f16_encode(v);
                }
            }
            RowStorage::I8 { codes, scales } => {
                for id in 0..self.num_rows {
                    let row = &head[id * dim..(id + 1) * dim];
                    let scale = i8_row_scale(row);
                    scales[id] = scale;
                    for (code, &v) in codes[id * dim..(id + 1) * dim].iter_mut().zip(row) {
                        *code = i8_encode(v, scale);
                    }
                }
            }
        }
        *rest = tail;
    }
}

/// Row-wise sparse gradient for one embedding table: `id → ∂L/∂W[id]`.
///
/// Rows are kept in a `BTreeMap` so iteration order is deterministic, which keeps training
/// runs reproducible and makes the gradient snapshots handed to PCA stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseGradient {
    dim: usize,
    rows: BTreeMap<usize, Vec<f64>>,
}

impl SparseGradient {
    /// Create an empty gradient for vectors of dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            rows: BTreeMap::new(),
        }
    }

    /// Gradient vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Accumulate `grad` into row `id` (adds if the row already has a gradient).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn accumulate(&mut self, id: usize, grad: &[f64]) {
        assert_eq!(grad.len(), self.dim, "gradient dimension mismatch");
        let entry = self.rows.entry(id).or_insert_with(|| vec![0.0; self.dim]);
        for (e, &g) in entry.iter_mut().zip(grad) {
            *e += g;
        }
    }

    /// Merge another sparse gradient into this one.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &SparseGradient) {
        assert_eq!(self.dim, other.dim, "gradient dimension mismatch in merge");
        for (&id, g) in other.iter() {
            self.accumulate(id, g);
        }
    }

    /// Scale every stored gradient by `alpha` (e.g. `1/batch_size`).
    pub fn scale(&mut self, alpha: f64) {
        for g in self.rows.values_mut() {
            for v in g.iter_mut() {
                *v *= alpha;
            }
        }
    }

    /// Gradient for a specific row, if present.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&[f64]> {
        self.rows.get(&id).map(Vec::as_slice)
    }

    /// Iterate over `(id, gradient)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (&usize, &Vec<f64>)> {
        self.rows.iter()
    }

    /// The set of touched row ids in ascending order.
    #[must_use]
    pub fn touched_ids(&self) -> Vec<usize> {
        self.rows.keys().copied().collect()
    }

    /// L2 norm of the gradient of row `id`, or `0.0` if untouched.
    #[must_use]
    pub fn row_norm(&self, id: usize) -> f64 {
        self.get(id)
            .map(|g| g.iter().map(|x| x * x).sum::<f64>().sqrt())
            .unwrap_or(0.0)
    }

    /// Convert into a dense matrix whose rows are the touched gradients (in id order),
    /// which is exactly the snapshot matrix `G` the paper's PCA analysis consumes.
    /// Returns the matrix together with the id of each row.
    #[must_use]
    pub fn to_snapshot(&self) -> (liveupdate_linalg::Matrix, Vec<usize>) {
        let ids = self.touched_ids();
        let rows: Vec<Vec<f64>> = ids.iter().map(|id| self.rows[id].clone()).collect();
        let matrix = liveupdate_linalg::Matrix::from_rows(&rows)
            .expect("all gradient rows share the same dimension");
        (matrix, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Instant;

    #[test]
    fn new_table_has_bounded_init() {
        let t = EmbeddingTable::new(10, 4, 1);
        let bound = 1.0 / 2.0;
        assert!(t.as_slice().iter().all(|w| w.abs() <= bound));
        assert_eq!(t.parameter_count(), 40);
        assert_eq!(t.memory_bytes(), 40 * 8);
    }

    #[test]
    fn row_init_is_independent_of_table_size() {
        // Per-row seed streams: row r's values must not depend on how many rows follow.
        let small = EmbeddingTable::new(10, 6, 42);
        let large = EmbeddingTable::new(1000, 6, 42);
        for id in 0..10 {
            assert_eq!(
                small.row(id),
                large.row(id),
                "row {id} differs with table size"
            );
        }
    }

    #[test]
    fn construction_stays_within_time_budget() {
        // 10⁶ rows × dim 8 must construct in seconds even unoptimised — the per-row
        // stream fill is the difference between this and minutes of sequential RNG.
        let started = Instant::now();
        let t = EmbeddingTable::new(1_000_000, 8, 7);
        let elapsed = started.elapsed();
        assert_eq!(t.num_rows(), 1_000_000);
        assert!(
            elapsed.as_secs_f64() < 30.0,
            "10⁶×8 construction took {elapsed:?}; per-row fill should be far faster"
        );
    }

    #[test]
    fn adagrad_state_is_lazy() {
        // Regression: `new`/`zeros` used to allocate a num_rows-long accumulator
        // eagerly; it must grow on first touch only.
        let t = EmbeddingTable::new(10_000, 4, 3);
        assert_eq!(
            t.adagrad_entries(),
            0,
            "no accumulator rows before any update"
        );
        let z = EmbeddingTable::zeros(10_000, 4);
        assert_eq!(z.adagrad_entries(), 0);

        let mut t = t;
        let mut g = SparseGradient::new(4);
        g.accumulate(17, &[1.0; 4]);
        g.accumulate(9_999, &[1.0; 4]);
        t.apply_adagrad(&g, 0.1, 1e-8);
        assert_eq!(
            t.adagrad_entries(),
            2,
            "exactly the touched rows grow state"
        );
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_geometry_rejected() {
        let _ = EmbeddingTable::zeros(usize::MAX / 2, 4);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = EmbeddingTable::new(4, 0, 0);
    }

    #[test]
    fn pooled_lookup_means_rows() {
        let mut t = EmbeddingTable::zeros(3, 2);
        t.set_row(0, &[1.0, 2.0]);
        t.set_row(1, &[3.0, 4.0]);
        assert_eq!(t.pooled_lookup(&[0, 1]), vec![2.0, 3.0]);
        assert_eq!(t.pooled_lookup(&[0]), vec![1.0, 2.0]);
        assert_eq!(t.pooled_lookup(&[]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn lookup_out_of_bounds_panics() {
        let t = EmbeddingTable::zeros(2, 2);
        let _ = t.row(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pooled_lookup_out_of_bounds_panics_quantized() {
        let t = EmbeddingTable::with_storage(4, 2, 1, StorageKind::I8);
        let _ = t.pooled_lookup(&[4]);
    }

    #[test]
    fn f16_round_trip_is_close() {
        for &v in &[0.0, 1.0, -1.0, 0.5, -0.25, 0.1, 123.456, -0.0078125, 1e-5] {
            let back = f16_decode(f16_encode(v));
            let tol = v.abs().max(1e-4) * 1e-3 + 1e-7;
            assert!((back - v).abs() <= tol, "f16 round trip {v} -> {back}");
        }
        assert_eq!(f16_decode(f16_encode(0.0)), 0.0);
        assert!(f16_decode(f16_encode(1e9)).is_infinite());
    }

    #[test]
    fn quantized_read_paths_agree() {
        for kind in [StorageKind::F16, StorageKind::I8] {
            let t = EmbeddingTable::with_storage(50, 8, 11, kind);
            assert_eq!(t.storage_kind(), kind);
            // row_into == row_to_vec == pooled_lookup over a single id.
            let mut buf = vec![0.0; 8];
            for id in [0usize, 7, 49] {
                t.row_into(id, &mut buf);
                assert_eq!(buf, t.row_to_vec(id));
                assert_eq!(buf, t.pooled_lookup(&[id]));
            }
            // Quantization error is bounded by the codebook resolution.
            let exact = EmbeddingTable::new(50, 8, 11);
            for id in 0..50 {
                t.row_into(id, &mut buf);
                for (q, &e) in buf.iter().zip(exact.row(id)) {
                    assert!((q - e).abs() < 0.01, "{kind:?} row {id}: {q} vs {e}");
                }
            }
        }
    }

    #[test]
    fn quantized_storage_cuts_resident_bytes() {
        let f64_t = EmbeddingTable::new(10_000, 16, 5);
        let f16_t = EmbeddingTable::with_storage(10_000, 16, 5, StorageKind::F16);
        let i8_t = EmbeddingTable::with_storage(10_000, 16, 5, StorageKind::I8);
        assert_eq!(f64_t.memory_bytes(), 10_000 * 16 * 8);
        assert_eq!(f16_t.memory_bytes(), 10_000 * 16 * 2);
        // int8: 1 byte per code + 8 bytes per row for the scale.
        assert_eq!(i8_t.memory_bytes(), 10_000 * 16 + 10_000 * 8);
        assert!(f64_t.memory_bytes() as f64 / i8_t.memory_bytes() as f64 > 3.5);
    }

    #[test]
    fn writes_to_quantized_rows_land_in_master_and_read_back_exactly() {
        let mut t = EmbeddingTable::with_storage(100, 4, 9, StorageKind::I8);
        assert_eq!(t.master_rows(), 0);
        let exact = [0.123_456_789, -0.987, 0.5, -0.25];
        t.set_row(42, &exact);
        assert_eq!(t.master_rows(), 1);
        // The touched row reads back bit-exactly (master), everything else stays quantized.
        assert_eq!(t.row_to_vec(42), exact.to_vec());
        assert_eq!(t.row(42), &exact); // master rows are borrowable
        t.add_to_row(42, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(t.row_to_vec(42)[0], exact[0] + 1.0);
        // Untouched row: writes via row_mut also promote.
        t.row_mut(7)[0] = 3.25;
        assert_eq!(t.master_rows(), 2);
        assert_eq!(t.row_to_vec(7)[0], 3.25);
    }

    #[test]
    fn convert_storage_round_trip_folds_master() {
        let mut t = EmbeddingTable::new(20, 4, 13);
        let original = t.clone();
        t.convert_storage(StorageKind::F16);
        assert_eq!(t.storage_kind(), StorageKind::F16);
        t.set_row(3, &[0.111, 0.222, 0.333, 0.444]);
        assert_eq!(t.master_rows(), 1);
        t.convert_storage(StorageKind::F64);
        assert_eq!(t.storage_kind(), StorageKind::F64);
        assert_eq!(t.master_rows(), 0, "master folded into backing storage");
        // The overwritten row survived the conversion chain at f16 precision.
        for (v, &e) in t.row(3).iter().zip(&[0.111, 0.222, 0.333, 0.444]) {
            assert!((v - e).abs() < 1e-3);
        }
        // Untouched rows round-tripped within f16 resolution of the original.
        for id in [0usize, 10, 19] {
            for (v, &e) in t.row(id).iter().zip(original.row(id)) {
                assert!((v - e).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn copy_from_preserves_destination_storage_kind() {
        let src = EmbeddingTable::new(30, 4, 21);
        let mut dst = EmbeddingTable::with_storage(30, 4, 99, StorageKind::I8);
        dst.set_row(5, &[9.0, 9.0, 9.0, 9.0]); // master row that must be cleared
        dst.copy_from(&src);
        assert_eq!(dst.storage_kind(), StorageKind::I8);
        assert_eq!(dst.master_rows(), 0);
        let mut buf = vec![0.0; 4];
        for id in 0..30 {
            dst.row_into(id, &mut buf);
            for (v, &e) in buf.iter().zip(src.row(id)) {
                assert!((v - e).abs() < 0.01);
            }
        }
    }

    #[test]
    fn export_import_rows_round_trip() {
        let src = EmbeddingTable::new(12, 3, 31);
        let mut flat = Vec::new();
        src.export_rows_into(&mut flat);
        assert_eq!(flat.len(), 36);
        let mut dst = EmbeddingTable::zeros(12, 3);
        let mut rest: &[f64] = &flat;
        dst.import_rows(&mut rest);
        assert!(rest.is_empty());
        assert!(dst.changed_rows(&src, 0.0).is_empty());
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut t = EmbeddingTable::zeros(4, 2);
        let mut g = SparseGradient::new(2);
        g.accumulate(1, &[1.0, -2.0]);
        t.apply_sgd(&g, 0.5);
        assert_eq!(t.row(1), &[-0.5, 1.0]);
        assert_eq!(t.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn adagrad_shrinks_effective_step_over_time() {
        let mut t = EmbeddingTable::zeros(2, 2);
        let mut g = SparseGradient::new(2);
        g.accumulate(0, &[1.0, 1.0]);
        t.apply_adagrad(&g, 0.1, 1e-8);
        let first_step = -t.row(0)[0];
        let before_second = t.row(0)[0];
        t.apply_adagrad(&g, 0.1, 1e-8);
        let second_step = before_second - t.row(0)[0];
        assert!(first_step > 0.0);
        assert!(second_step > 0.0);
        assert!(second_step < first_step, "adagrad step should shrink");
    }

    #[test]
    fn add_and_set_row() {
        let mut t = EmbeddingTable::zeros(2, 3);
        t.set_row(0, &[1.0, 2.0, 3.0]);
        t.add_to_row(0, &[0.5, 0.5, 0.5]);
        assert_eq!(t.row(0), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn changed_rows_and_distance() {
        let mut a = EmbeddingTable::zeros(5, 2);
        let b = EmbeddingTable::zeros(5, 2);
        assert!(a.changed_rows(&b, 1e-12).is_empty());
        assert_eq!(a.squared_distance(&b), 0.0);
        a.set_row(2, &[1.0, 0.0]);
        a.set_row(4, &[0.0, 2.0]);
        assert_eq!(a.changed_rows(&b, 1e-12), vec![2, 4]);
        assert!((a.squared_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn copy_from_synchronises() {
        let src = EmbeddingTable::new(6, 3, 9);
        let mut dst = EmbeddingTable::zeros(6, 3);
        dst.copy_from(&src);
        assert!(dst.changed_rows(&src, 0.0).is_empty());
    }

    #[test]
    fn sparse_gradient_accumulate_and_merge() {
        let mut g = SparseGradient::new(2);
        assert!(g.is_empty());
        g.accumulate(3, &[1.0, 1.0]);
        g.accumulate(3, &[1.0, -1.0]);
        g.accumulate(7, &[2.0, 0.0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(3).unwrap(), &[2.0, 0.0]);
        assert_eq!(g.touched_ids(), vec![3, 7]);
        assert!((g.row_norm(7) - 2.0).abs() < 1e-12);
        assert_eq!(g.row_norm(100), 0.0);

        let mut h = SparseGradient::new(2);
        h.accumulate(7, &[0.0, 1.0]);
        g.merge(&h);
        assert_eq!(g.get(7).unwrap(), &[2.0, 1.0]);

        g.scale(0.5);
        assert_eq!(g.get(3).unwrap(), &[1.0, 0.0]);
    }

    #[test]
    fn snapshot_matrix_matches_touched_rows() {
        let mut g = SparseGradient::new(3);
        g.accumulate(5, &[1.0, 2.0, 3.0]);
        g.accumulate(1, &[-1.0, 0.0, 1.0]);
        let (m, ids) = g.to_snapshot();
        assert_eq!(ids, vec![1, 5]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(0), &[-1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_sgd_then_reverse_restores(
            ids in proptest::collection::vec(0usize..20, 1..10),
            lr in 0.001f64..1.0,
        ) {
            let mut t = EmbeddingTable::new(20, 4, 3);
            let original = t.clone();
            let mut g = SparseGradient::new(4);
            for (k, &id) in ids.iter().enumerate() {
                g.accumulate(id, &[k as f64, 1.0, -1.0, 0.5]);
            }
            t.apply_sgd(&g, lr);
            t.apply_sgd(&g, -lr);
            prop_assert!(t.squared_distance(&original) < 1e-18);
        }

        #[test]
        fn prop_changed_rows_subset_of_touched(
            ids in proptest::collection::vec(0usize..50, 1..20),
        ) {
            let mut t = EmbeddingTable::new(50, 2, 5);
            let before = t.clone();
            let mut g = SparseGradient::new(2);
            for &id in &ids {
                g.accumulate(id, &[1.0, 1.0]);
            }
            t.apply_sgd(&g, 0.1);
            let changed = t.changed_rows(&before, 0.0);
            let touched = g.touched_ids();
            for c in &changed {
                prop_assert!(touched.contains(c));
            }
        }

        #[test]
        fn prop_pooled_lookup_within_row_bounds(
            ids in proptest::collection::vec(0usize..30, 1..8),
        ) {
            let t = EmbeddingTable::new(30, 4, 7);
            let pooled = t.pooled_lookup(&ids);
            // The mean of rows must lie within [min, max] of the contributing coordinates.
            for (j, &pooled_j) in pooled.iter().enumerate() {
                let vals: Vec<f64> = ids.iter().map(|&id| t.row(id)[j]).collect();
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(pooled_j >= lo - 1e-12 && pooled_j <= hi + 1e-12);
            }
        }

        #[test]
        fn prop_quantized_pooled_lookup_tracks_f64(
            ids in proptest::collection::vec(0usize..40, 1..8),
            kind_i8 in proptest::bool::ANY,
        ) {
            let kind = if kind_i8 { StorageKind::I8 } else { StorageKind::F16 };
            let exact = EmbeddingTable::new(40, 4, 17);
            let quant = EmbeddingTable::with_storage(40, 4, 17, kind);
            let p_exact = exact.pooled_lookup(&ids);
            let p_quant = quant.pooled_lookup(&ids);
            for (q, e) in p_quant.iter().zip(&p_exact) {
                prop_assert!((q - e).abs() < 0.01, "{kind:?}: {q} vs {e}");
            }
        }
    }
}
