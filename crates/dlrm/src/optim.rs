//! Optimiser configuration shared by the dense and sparse parts of the model.
//!
//! Production DLRMs commonly use plain SGD for dense layers and row-wise Adagrad for
//! embedding tables; both are available here and selected through [`OptimizerKind`].

use serde::{Deserialize, Serialize};

/// Which optimiser to apply to the embedding tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent with a fixed learning rate.
    Sgd,
    /// Row-wise Adagrad (per-row accumulator of mean squared gradients).
    RowWiseAdagrad {
        /// Small constant added to the denominator for numerical stability.
        eps: f64,
    },
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::RowWiseAdagrad { eps: 1e-8 }
    }
}

/// Hyper-parameters governing a training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Learning rate for the dense MLP parameters.
    pub dense_learning_rate: f64,
    /// Learning rate for the embedding tables.
    pub sparse_learning_rate: f64,
    /// Optimiser used for the embedding tables.
    pub sparse_optimizer: OptimizerKind,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            dense_learning_rate: 0.05,
            sparse_learning_rate: 0.05,
            sparse_optimizer: OptimizerKind::default(),
        }
    }
}

impl OptimizerConfig {
    /// Create a configuration using plain SGD everywhere with a single learning rate.
    #[must_use]
    pub fn sgd(learning_rate: f64) -> Self {
        Self {
            dense_learning_rate: learning_rate,
            sparse_learning_rate: learning_rate,
            sparse_optimizer: OptimizerKind::Sgd,
        }
    }

    /// Validate that the configuration is usable (positive, finite learning rates).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.dense_learning_rate > 0.0
            && self.dense_learning_rate.is_finite()
            && self.sparse_learning_rate > 0.0
            && self.sparse_learning_rate.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_adagrad() {
        let c = OptimizerConfig::default();
        assert!(c.is_valid());
        assert!(matches!(
            c.sparse_optimizer,
            OptimizerKind::RowWiseAdagrad { .. }
        ));
    }

    #[test]
    fn sgd_constructor() {
        let c = OptimizerConfig::sgd(0.1);
        assert!(c.is_valid());
        assert_eq!(c.sparse_optimizer, OptimizerKind::Sgd);
        assert_eq!(c.dense_learning_rate, 0.1);
        assert_eq!(c.sparse_learning_rate, 0.1);
    }

    #[test]
    fn invalid_configs_detected() {
        let mut c = OptimizerConfig {
            dense_learning_rate: 0.0,
            ..OptimizerConfig::default()
        };
        assert!(!c.is_valid());
        c.dense_learning_rate = f64::NAN;
        assert!(!c.is_valid());
        c = OptimizerConfig {
            sparse_learning_rate: -1.0,
            ..OptimizerConfig::default()
        };
        assert!(!c.is_valid());
    }
}
